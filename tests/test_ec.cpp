/**
 * @file
 * Erasure-coding unit tests: GF(256) arithmetic against the
 * first-principles reference multiply, the systematic Cauchy RS codec
 * (round trips under every tolerable loss pattern), shard payload
 * encoding with per-shard checksums, the SmartDS on-card EC engine, and
 * the Table 3 resource accounting of the optional engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/checksum.h"
#include "common/random.h"
#include "ec/gf256.h"
#include "ec/reed_solomon.h"
#include "lz4/lz4.h"
#include "mem/memory_system.h"
#include "middletier/server_base.h"
#include "net/fabric.h"
#include "sim/simulator.h"
#include "smartds/device.h"
#include "smartds/resource_model.h"

namespace smartds::ec {
namespace {

// ---------------------------------------------------------------------
// GF(256) arithmetic
// ---------------------------------------------------------------------

TEST(Gf256, TableMulMatchesReferenceForAllPairs)
{
    // Exhaustive: the exp/log tables must agree with the shift-and-reduce
    // reference multiply on all 65536 input pairs.
    for (unsigned a = 0; a < 256; ++a)
        for (unsigned b = 0; b < 256; ++b)
            ASSERT_EQ(gfMul(static_cast<std::uint8_t>(a),
                            static_cast<std::uint8_t>(b)),
                      gfMulSlow(static_cast<std::uint8_t>(a),
                                static_cast<std::uint8_t>(b)))
                << a << " * " << b;
}

TEST(Gf256, FieldAxioms)
{
    for (unsigned a = 0; a < 256; ++a) {
        const auto x = static_cast<std::uint8_t>(a);
        EXPECT_EQ(gfMul(x, 1), x);
        EXPECT_EQ(gfMul(x, 0), 0);
        if (a != 0) {
            // a * a^-1 = 1 and division is multiplication by the inverse.
            EXPECT_EQ(gfMul(x, gfInv(x)), 1);
            EXPECT_EQ(gfDiv(x, x), 1);
            for (unsigned b = 1; b < 256; b += 37) {
                const auto y = static_cast<std::uint8_t>(b);
                EXPECT_EQ(gfMul(gfDiv(x, y), y), x);
            }
        }
    }
    // The generator has full order: 2^255 = 1, and no smaller power of
    // the whole cycle repeats the identity.
    EXPECT_EQ(gfExp(0), 1);
    EXPECT_EQ(gfExp(255), 1);
    for (unsigned p = 1; p < 255; ++p)
        EXPECT_NE(gfExp(p), 1) << "generator order divides " << p;
}

TEST(Gf256, MulAddMatchesScalarLoop)
{
    Rng rng(11);
    std::vector<std::uint8_t> dst(257), src(257), expect(257);
    for (std::size_t i = 0; i < dst.size(); ++i) {
        dst[i] = static_cast<std::uint8_t>(rng.below(256));
        src[i] = static_cast<std::uint8_t>(rng.below(256));
    }
    const std::uint8_t c = 0x8e;
    for (std::size_t i = 0; i < dst.size(); ++i)
        expect[i] = dst[i] ^ gfMulSlow(src[i], c);
    gfMulAdd(dst.data(), src.data(), c, dst.size());
    EXPECT_EQ(dst, expect);
}

// ---------------------------------------------------------------------
// RsCodec matrix construction
// ---------------------------------------------------------------------

TEST(RsCodec, GeneratorMatrixMatchesBruteForceCauchy)
{
    const RsCodec codec(4, 2);
    // Systematic rows are the identity.
    for (unsigned r = 0; r < 4; ++r)
        for (unsigned c = 0; c < 4; ++c)
            EXPECT_EQ(codec.coefficient(r, c), r == c ? 1 : 0);
    // Parity rows: 1 / (x_p + y_j) with x_p = k + p, y_j = j. Find the
    // inverse by brute-force search over the field, using only the
    // reference multiply — no shared code with the codec.
    for (unsigned p = 0; p < 2; ++p) {
        for (unsigned j = 0; j < 4; ++j) {
            const auto denom =
                static_cast<std::uint8_t>((4 + p) ^ j); // GF addition = xor
            std::uint8_t inv = 0;
            for (unsigned c = 1; c < 256; ++c) {
                if (gfMulSlow(denom, static_cast<std::uint8_t>(c)) == 1) {
                    inv = static_cast<std::uint8_t>(c);
                    break;
                }
            }
            ASSERT_NE(inv, 0u);
            EXPECT_EQ(codec.coefficient(4 + p, j), inv);
        }
    }
}

TEST(RsCodec, ShardSizeIsCeilOverKMinOne)
{
    EXPECT_EQ(RsCodec::shardSize(0, 4), 1u);
    EXPECT_EQ(RsCodec::shardSize(1, 4), 1u);
    EXPECT_EQ(RsCodec::shardSize(7, 4), 2u);
    EXPECT_EQ(RsCodec::shardSize(8, 4), 2u);
    EXPECT_EQ(RsCodec::shardSize(9, 4), 3u);
    EXPECT_EQ(RsCodec::shardSize(4096, 8), 512u);
}

// ---------------------------------------------------------------------
// Round trips under every tolerable loss pattern
// ---------------------------------------------------------------------

std::vector<std::uint8_t>
randomStripe(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> stripe(n);
    for (auto &b : stripe)
        b = static_cast<std::uint8_t>(rng.below(256));
    return stripe;
}

/** Decode from all shards except @p lost and require the exact stripe. */
void
expectRecovers(const RsCodec &codec,
               const std::vector<std::vector<std::uint8_t>> &shards,
               const std::vector<unsigned> &lost,
               const std::vector<std::uint8_t> &stripe)
{
    std::vector<std::pair<unsigned, const std::vector<std::uint8_t> *>>
        have;
    for (unsigned i = 0; i < codec.n(); ++i)
        if (std::find(lost.begin(), lost.end(), i) == lost.end())
            have.emplace_back(i, &shards[i]);
    const auto out = codec.decode(have, stripe.size());
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, stripe);
}

TEST(RsCodec, Rs42SurvivesEverySingleAndDoubleLoss)
{
    const RsCodec codec(4, 2);
    // 1000 is not a multiple of k: the last data shard is zero-padded.
    const auto stripe = randomStripe(1000, 3);
    const auto shards = codec.encode(stripe.data(), stripe.size());
    ASSERT_EQ(shards.size(), 6u);
    for (const auto &s : shards)
        EXPECT_EQ(s.size(), RsCodec::shardSize(stripe.size(), 4));

    expectRecovers(codec, shards, {}, stripe);
    for (unsigned a = 0; a < 6; ++a) {
        expectRecovers(codec, shards, {a}, stripe);
        for (unsigned b = a + 1; b < 6; ++b)
            expectRecovers(codec, shards, {a, b}, stripe);
    }
}

TEST(RsCodec, Rs83SurvivesEveryTripleLoss)
{
    const RsCodec codec(8, 3);
    const auto stripe = randomStripe(4096, 9);
    const auto shards = codec.encode(stripe.data(), stripe.size());
    ASSERT_EQ(shards.size(), 11u);
    for (unsigned a = 0; a < 11; ++a)
        for (unsigned b = a + 1; b < 11; ++b)
            for (unsigned c = b + 1; c < 11; ++c)
                expectRecovers(codec, shards, {a, b, c}, stripe);
}

TEST(RsCodec, TinyStripesRoundTrip)
{
    for (const std::size_t size : {std::size_t{1}, std::size_t{3},
                                   std::size_t{4}, std::size_t{5}}) {
        const RsCodec codec(4, 2);
        const auto stripe = randomStripe(size, size);
        const auto shards = codec.encode(stripe.data(), stripe.size());
        expectRecovers(codec, shards, {0, 5}, stripe);
    }
}

TEST(RsCodec, DecodeNeedsKDistinctShards)
{
    const RsCodec codec(4, 2);
    const auto stripe = randomStripe(512, 1);
    const auto shards = codec.encode(stripe.data(), stripe.size());

    std::vector<std::pair<unsigned, const std::vector<std::uint8_t> *>>
        few = {{0, &shards[0]}, {1, &shards[1]}, {2, &shards[2]}};
    EXPECT_FALSE(codec.decode(few, stripe.size()).has_value());

    // A duplicate index does not count toward k.
    few.emplace_back(2, &shards[2]);
    EXPECT_FALSE(codec.decode(few, stripe.size()).has_value());
}

// ---------------------------------------------------------------------
// Shard payload encoding (middle-tier write path)
// ---------------------------------------------------------------------

/** Concrete server exposing the protected EC helpers. */
struct EcProbe : middletier::MiddleTierServer
{
    net::NodeId
    frontNode(unsigned) const override
    {
        return 0;
    }
    middletier::Design
    design() const override
    {
        return middletier::Design::CpuOnly;
    }
    void addUsageProbes(middletier::UsageProbes &) override {}

    using MiddleTierServer::ecCodec;
    using MiddleTierServer::encodeShards;
    middletier::FailoverStats &stats() { return failover_; }
};

TEST(EncodeShards, FunctionalShardsCarryChecksumsAndDecode)
{
    EcProbe probe;
    middletier::ServerConfig config;
    config.policy = middletier::ReplicationPolicy::ErasureCode;
    config.ec.dataShards = 4;
    config.ec.parityShards = 2;

    const auto block = randomStripe(3000, 21);
    net::Payload payload;
    payload.data =
        std::make_shared<const std::vector<std::uint8_t>>(block);
    payload.size = block.size();
    payload.originalSize = 4096;
    payload.compressed = true;

    const auto shards = probe.encodeShards(config, /*tag=*/1, payload);
    ASSERT_EQ(shards.size(), 6u);
    EXPECT_EQ(probe.stats().stripesEncoded, 1u);

    std::vector<std::pair<unsigned, const std::vector<std::uint8_t> *>>
        pairs;
    for (unsigned s = 0; s < 6; ++s) {
        ASSERT_TRUE(shards[s].data);
        EXPECT_EQ(shards[s].ecK, 4u);
        EXPECT_EQ(shards[s].ecM, 2u);
        EXPECT_EQ(shards[s].ecShard, s);
        EXPECT_EQ(shards[s].ecStripeBytes, block.size());
        EXPECT_EQ(shards[s].originalSize, 4096u);
        EXPECT_EQ(shards[s].size, shards[s].data->size());
        EXPECT_EQ(shards[s].ecShardChecksum, xxhash32(*shards[s].data));
        if (s != 1 && s != 4) // drop one data + one parity shard
            pairs.emplace_back(s, shards[s].data.get());
    }
    const auto back =
        probe.ecCodec(config).decode(pairs, block.size());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, block);
}

TEST(EncodeShards, TimingShardsCarryGeometryWithoutData)
{
    EcProbe probe;
    middletier::ServerConfig config;
    config.policy = middletier::ReplicationPolicy::ErasureCode;
    config.ec.dataShards = 8;
    config.ec.parityShards = 3;

    net::Payload payload;
    payload.size = 2000;
    payload.originalSize = 4096;
    const auto shards = probe.encodeShards(config, /*tag=*/2, payload);
    ASSERT_EQ(shards.size(), 11u);
    for (unsigned s = 0; s < 11; ++s) {
        EXPECT_FALSE(shards[s].data);
        EXPECT_EQ(shards[s].size, RsCodec::shardSize(2000, 8));
        EXPECT_EQ(shards[s].ecK, 8u);
        EXPECT_EQ(shards[s].ecM, 3u);
        EXPECT_EQ(shards[s].ecShard, s);
    }
}

// ---------------------------------------------------------------------
// SmartDS on-card EC engine
// ---------------------------------------------------------------------

struct EcDeviceFixture : ::testing::Test
{
    sim::Simulator sim;
    net::Fabric fabric{sim};
    mem::MemorySystem memory{sim, "mem", {}};

    device::SmartDsDevice::Config
    config(bool functional)
    {
        device::SmartDsDevice::Config c;
        c.functional = functional;
        c.ecEngine = true;
        return c;
    }
};

TEST_F(EcDeviceFixture, EngineEncodeDecodeRoundTripsOnCard)
{
    device::SmartDsDevice dev(fabric, "dev", &memory, config(true));
    const auto block = randomStripe(4096, 5);

    auto src = dev.devAlloc(4096);
    std::memcpy(src->bytes()->data(), block.data(), block.size());
    src->content.size = block.size();
    src->content.originalSize = 4096;

    const unsigned k = 4, m = 2;
    const Bytes shard_bytes = RsCodec::shardSize(block.size(), k);
    std::vector<device::BufferRef> shards;
    for (unsigned s = 0; s < k + m; ++s)
        shards.push_back(dev.devAlloc(shard_bytes));

    auto enc = dev.ecEncode(src, block.size(), shards, 0, k, m);
    sim.run();
    EXPECT_EQ(enc.completion.value(), shard_bytes);

    const RsCodec codec(k, m);
    const auto expect = codec.encode(block.data(), block.size());
    for (unsigned s = 0; s < k + m; ++s) {
        EXPECT_EQ(shards[s]->content.ecK, k);
        EXPECT_EQ(shards[s]->content.ecM, m);
        EXPECT_EQ(shards[s]->content.ecShard, s);
        EXPECT_EQ(shards[s]->content.ecStripeBytes, block.size());
        EXPECT_EQ(shards[s]->content.size, shard_bytes);
        EXPECT_EQ(0, std::memcmp(shards[s]->bytes()->data(),
                                 expect[s].data(), shard_bytes));
        EXPECT_EQ(shards[s]->content.ecShardChecksum,
                  xxhash32(shards[s]->bytes()->data(), shard_bytes));
    }

    // Decode from k surviving shards — one of them parity.
    std::vector<std::pair<unsigned, device::BufferRef>> have = {
        {0, shards[0]}, {2, shards[2]}, {3, shards[3]}, {5, shards[5]}};
    auto dst = dev.devAlloc(4096);
    auto dec = dev.ecDecode(have, block.size(), dst, 0, k, m);
    sim.run();
    EXPECT_EQ(dec.completion.value(), block.size());
    EXPECT_FALSE(dst->content.corrupted);
    EXPECT_EQ(dst->content.ecK, 0u); // whole block again, not a shard
    EXPECT_EQ(0, std::memcmp(dst->bytes()->data(), block.data(),
                             block.size()));
}

TEST_F(EcDeviceFixture, TimingEngineChargesTimeAndFlagsShortDecode)
{
    device::SmartDsDevice dev(fabric, "dev", &memory, config(false));
    auto src = dev.devAlloc(4096);
    src->content.size = 4096;
    std::vector<device::BufferRef> shards;
    for (unsigned s = 0; s < 6; ++s)
        shards.push_back(dev.devAlloc(1024));

    dev.ecEncode(src, 4096, shards, 0, 4, 2);
    sim.run();
    EXPECT_GT(sim.now(), 0u); // engine + HBM time was charged

    // Fewer than k shards cannot reconstruct: timing mode flags the
    // output corrupted instead of fabricating a stripe.
    auto dst = dev.devAlloc(4096);
    std::vector<std::pair<unsigned, device::BufferRef>> two = {
        {0, shards[0]}, {1, shards[1]}};
    dev.ecDecode(two, 4096, dst, 0, 4, 2);
    sim.run();
    EXPECT_TRUE(dst->content.corrupted);
}

// ---------------------------------------------------------------------
// Table 3 resource accounting
// ---------------------------------------------------------------------

void
expectResourcesEq(const device::ResourceVec &a,
                  const device::ResourceVec &b)
{
    EXPECT_DOUBLE_EQ(a.lutK, b.lutK);
    EXPECT_DOUBLE_EQ(a.regK, b.regK);
    EXPECT_DOUBLE_EQ(a.bram, b.bram);
}

TEST(EcResources, EngineIsAdditivePerPortAndOffByDefault)
{
    using device::ecEngineComponent;
    using device::smartdsResources;

    sim::Simulator sim;
    net::Fabric fabric(sim);
    mem::MemorySystem memory(sim, "mem", {});

    device::SmartDsDevice::Config base;
    base.ports = 2;
    device::SmartDsDevice plain(fabric, "plain", &memory, base);
    // Without the engine the pinned Table 3 numbers are untouched.
    expectResourcesEq(plain.resources(), smartdsResources(2));

    base.ecEngine = true;
    device::SmartDsDevice ec_dev(fabric, "ec", &memory, base);
    expectResourcesEq(ec_dev.resources(),
                      smartdsResources(2) +
                          ecEngineComponent().cost * 2.0);

    // The engine-equipped 6-port bitstream still fits the VCU128.
    device::SmartDsDevice::Config six;
    six.ports = 6;
    six.ecEngine = true;
    device::SmartDsDevice big(fabric, "big", &memory, six);
    const auto need = big.resources();
    const auto cap = device::vcu128Capacity();
    EXPECT_LE(need.lutK, cap.lutK);
    EXPECT_LE(need.regK, cap.regK);
    EXPECT_LE(need.bram, cap.bram);
}

} // namespace
} // namespace smartds::ec
