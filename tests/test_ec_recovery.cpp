/**
 * @file
 * Erasure-coded durability end to end: failure-domain-aware shard
 * placement, NodeHealthView-driven recovery for both durability
 * policies, idempotent background reconstruction, correlated domain
 * crashes, and byte-for-byte degraded reads through the CpuOnly and
 * SmartDS designs with the block codec cache on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "corpus/block_cache.h"
#include "corpus/corpus.h"
#include "faults/fault_injector.h"
#include "host/core_pool.h"
#include "lz4/lz4.h"
#include "mem/memory_system.h"
#include "middletier/cpu_only_server.h"
#include "middletier/maintenance.h"
#include "middletier/protocol.h"
#include "middletier/smartds_server.h"
#include "net/fabric.h"
#include "sim/simulator.h"
#include "storage/storage_server.h"
#include "workload/experiment.h"
#include "workload/vm_client.h"

namespace smartds::middletier {
namespace {

using namespace smartds::time_literals;

// ---------------------------------------------------------------------
// Failure-domain-aware placement
// ---------------------------------------------------------------------

/** Concrete server exposing the protected placement helpers. */
struct PlacementProbe : MiddleTierServer
{
    net::NodeId
    frontNode(unsigned) const override
    {
        return 0;
    }
    Design
    design() const override
    {
        return Design::CpuOnly;
    }
    void addUsageProbes(UsageProbes &) override {}

    using MiddleTierServer::chooseDomainSpreadReplicas;
    using MiddleTierServer::chooseHealthyReplicas;
    using MiddleTierServer::initFailover;
    using MiddleTierServer::pickReplacement;
    NodeHealthView &healthView() { return health_; }
    const NodeHealthView &healthView() const { return health_; }
};

/** 9 nodes (ids 1..9) in 3 domains, node i in domain i % 3. */
ServerConfig
topologyConfig()
{
    ServerConfig config;
    for (unsigned i = 0; i < 9; ++i) {
        config.storageNodes.push_back(i + 1);
        config.storageDomains.push_back(i % 3);
    }
    return config;
}

std::map<unsigned, unsigned>
domainHistogram(const PlacementProbe &probe,
                const std::vector<net::NodeId> &picked)
{
    std::map<unsigned, unsigned> per_domain;
    for (const net::NodeId n : picked)
        ++per_domain[probe.healthView().domainOf(n)];
    return per_domain;
}

TEST(DomainPlacement, NeverColocatesWhenDomainsSuffice)
{
    PlacementProbe probe;
    const ServerConfig config = topologyConfig();
    probe.initFailover(config);
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const auto picked =
            probe.chooseDomainSpreadReplicas(config.storageNodes, 3, rng);
        ASSERT_EQ(picked.size(), 3u);
        EXPECT_EQ(std::set<net::NodeId>(picked.begin(), picked.end())
                      .size(),
                  3u);
        // 3 picks over 3 domains: one per domain, never two in one.
        for (const auto &[domain, count] : domainHistogram(probe, picked))
            EXPECT_EQ(count, 1u) << "domain " << domain;
    }
}

TEST(DomainPlacement, SpreadsEvenlyWhenShardsExceedDomains)
{
    // RS(4, 2) = 6 shards over 3 domains: co-location is unavoidable,
    // but the spread must be exactly 2 per domain — a domain crash then
    // costs at most m shards and every stripe stays recoverable.
    PlacementProbe probe;
    const ServerConfig config = topologyConfig();
    probe.initFailover(config);
    Rng rng(6);
    for (int i = 0; i < 200; ++i) {
        const auto picked =
            probe.chooseDomainSpreadReplicas(config.storageNodes, 6, rng);
        ASSERT_EQ(picked.size(), 6u);
        for (const auto &[domain, count] : domainHistogram(probe, picked))
            EXPECT_EQ(count, 2u) << "domain " << domain;
    }
}

TEST(DomainPlacement, FallsBackWithoutTopology)
{
    PlacementProbe probe;
    ServerConfig config;
    for (unsigned i = 0; i < 6; ++i)
        config.storageNodes.push_back(i + 1);
    probe.initFailover(config);
    Rng rng(7);
    const auto picked =
        probe.chooseDomainSpreadReplicas(config.storageNodes, 4, rng);
    ASSERT_EQ(picked.size(), 4u);
    EXPECT_EQ(std::set<net::NodeId>(picked.begin(), picked.end()).size(),
              4u);
}

TEST(DomainPlacement, ReplacementPrefersUnoccupiedDomain)
{
    PlacementProbe probe;
    ServerConfig config = topologyConfig();
    probe.initFailover(config);
    Rng rng(8);
    // Node i + 1 lives in domain i % 3: the placement occupies domains
    // 2 (node 3) and 0 (node 1), and node 3 is failing. Every
    // replacement draw must come from the untouched domain 1 (nodes 2,
    // 5, 8).
    const std::vector<net::NodeId> placement = {3, 1};
    for (int i = 0; i < 100; ++i) {
        const net::NodeId repl =
            probe.pickReplacement(config, rng, placement, 3);
        EXPECT_EQ(probe.healthView().domainOf(repl), 1u) << repl;
    }
}

// ---------------------------------------------------------------------
// NodeHealthView recovery semantics (both placement paths)
// ---------------------------------------------------------------------

TEST(NodeHealth, SuspectedNodeRegainsEligibilityOnAck)
{
    PlacementProbe probe;
    ServerConfig config = topologyConfig();
    config.failover.suspectThreshold = 2;
    probe.initFailover(config);
    NodeHealthView &health = probe.healthView();

    EXPECT_FALSE(health.noteTimeout(4)); // first strike: not yet
    EXPECT_TRUE(health.noteTimeout(4));  // threshold crossed
    EXPECT_FALSE(health.noteTimeout(4)); // already suspected: no re-fire
    EXPECT_TRUE(health.suspected(4));

    // Suspected nodes are excluded from fresh placement on BOTH paths:
    // replication (healthy choice) and EC (domain spread).
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        for (const net::NodeId n : probe.chooseHealthyReplicas(
                 config.storageNodes, 3, rng))
            EXPECT_NE(n, 4u);
        for (const net::NodeId n : probe.chooseDomainSpreadReplicas(
                 config.storageNodes, 6, rng))
            EXPECT_NE(n, 4u);
    }

    // One successful round trip clears the strikes and the suspicion.
    health.noteAck(4);
    EXPECT_FALSE(health.suspected(4));
    bool seen_rep = false, seen_ec = false;
    for (int i = 0; i < 200 && !(seen_rep && seen_ec); ++i) {
        const auto rep =
            probe.chooseHealthyReplicas(config.storageNodes, 3, rng);
        seen_rep |= std::find(rep.begin(), rep.end(), 4u) != rep.end();
        const auto ecp =
            probe.chooseDomainSpreadReplicas(config.storageNodes, 6, rng);
        seen_ec |= std::find(ecp.begin(), ecp.end(), 4u) != ecp.end();
    }
    EXPECT_TRUE(seen_rep);
    EXPECT_TRUE(seen_ec);
}

TEST(NodeHealth, SuspicionIgnoredWhenPoolWouldStarve)
{
    // RS(4, 2) needs 6 targets; suspecting 4 of 6 nodes must not shrink
    // the candidate set below the fanout — better a suspect node than a
    // failed write.
    NodeHealthView health(1);
    std::vector<net::NodeId> nodes = {1, 2, 3, 4, 5, 6};
    for (const net::NodeId n : {1u, 2u, 3u, 4u})
        health.noteTimeout(n);
    EXPECT_EQ(health.filterHealthy(nodes, 6).size(), 6u);
    EXPECT_EQ(health.filterHealthy(nodes, 2).size(), 2u);
}

// ---------------------------------------------------------------------
// Idempotent background reconstruction
// ---------------------------------------------------------------------

TEST(Maintenance, DuplicateRepairKeysDroppedWhileInFlight)
{
    sim::Simulator sim;
    mem::MemorySystem memory(sim, "mem", {});
    host::CorePool pool(sim, "cores", 2);
    MaintenanceService maint(sim, "maint", pool, memory);
    maint.stop(); // repairs only, no compaction bursts

    int resends = 0;
    const auto resend = [&resends]() { ++resends; };
    // A flapping node abandons the same shard twice: the second request
    // is a duplicate of the in-flight reconstruction and is dropped.
    EXPECT_TRUE(maint.scheduleRepair({7, 2}, 4096, 4, resend));
    EXPECT_FALSE(maint.scheduleRepair({7, 2}, 4096, 4, resend));
    // A different shard of the same stripe is NOT a duplicate.
    EXPECT_TRUE(maint.scheduleRepair({7, 3}, 4096, 1, resend));
    sim.run();

    EXPECT_EQ(maint.repairsDeduped(), 1u);
    EXPECT_EQ(maint.repairsCompleted(), 2u);
    EXPECT_EQ(resends, 2);
    // The fan-in-4 repair is an EC reconstruction and was timed.
    EXPECT_EQ(maint.reconstructionsCompleted(), 1u);
    EXPECT_GT(maint.reconstructionTicks(), 0u);

    // Once the repair finishes, its key is free for a genuine re-repair.
    EXPECT_TRUE(maint.scheduleRepair({7, 2}, 4096, 4, resend));
    sim.run();
    EXPECT_EQ(maint.repairsCompleted(), 3u);
    EXPECT_EQ(maint.repairsDeduped(), 1u);
}

// ---------------------------------------------------------------------
// Correlated domain crashes
// ---------------------------------------------------------------------

TEST(FaultInjector, DomainCrashKillsWholeDomainTogetherAndRecovers)
{
    sim::Simulator sim;
    faults::FaultInjector injector(sim, 0xd00d);
    const std::vector<std::vector<net::NodeId>> domains = {
        {1, 2}, {3, 4}, {5, 6}};
    injector.scheduleDomainCrash(domains, 100_us, 200_us);

    sim.runUntil(150_us);
    EXPECT_EQ(injector.crashedCount(), 2u);
    // The outage is correlated: exactly one domain lost BOTH nodes.
    unsigned whole_domains_down = 0;
    for (const auto &domain : domains) {
        const bool a = injector.profile(domain[0])->crashed();
        const bool b = injector.profile(domain[1])->crashed();
        EXPECT_EQ(a, b);
        whole_domains_down += (a && b) ? 1 : 0;
    }
    EXPECT_EQ(whole_domains_down, 1u);

    sim.run();
    EXPECT_EQ(injector.crashedCount(), 0u); // everyone recovered
    EXPECT_EQ(injector.crashesInjected(), 2u);
}

TEST(FaultInjector, DomainCrashIsDeterministicForFixedSeed)
{
    auto run = [] {
        sim::Simulator sim;
        faults::FaultInjector injector(sim, 0xcafe);
        const std::vector<std::vector<net::NodeId>> domains = {
            {1, 2}, {3, 4}, {5, 6}};
        injector.scheduleDomainCrash(domains, 100_us, /*outage=*/0);
        sim.run();
        std::vector<bool> crashed;
        for (net::NodeId n = 1; n <= 6; ++n)
            crashed.push_back(injector.profile(n)->crashed());
        return std::make_pair(injector.crashesInjected(), crashed);
    };
    const auto first = run();
    EXPECT_EQ(first, run());
    EXPECT_EQ(first.first, 2u); // a whole 2-node domain, permanently
}

// ---------------------------------------------------------------------
// End-to-end degraded reads, byte for byte (CpuOnly and SmartDS)
// ---------------------------------------------------------------------

/**
 * Functional testbed: storage nodes in 3 failure domains (node i in
 * domain i % 3), functional stores, fault profiles attached, and the
 * block codec cache on.
 */
struct EcBed
{
    sim::Simulator sim;
    net::Fabric fabric{sim};
    mem::MemorySystem memory{sim, "mem", {}};
    std::vector<std::unique_ptr<storage::StorageServer>> storage;
    std::vector<net::NodeId> storageNodes;
    faults::FaultInjector injector{sim};
    corpus::SyntheticCorpus corpus{1u << 20, 42};
    const corpus::BlockCodecCache &cache;
    workload::ClientMetrics metrics;
    std::uint64_t tags = 1;

    explicit EcBed(unsigned n_storage = 6)
        : cache(corpus::sharedBlockCache(corpus, 4096, 1))
    {
        storage::StorageServer::Config sc;
        sc.functionalStore = true;
        for (unsigned i = 0; i < n_storage; ++i) {
            storage.push_back(std::make_unique<storage::StorageServer>(
                fabric, "st" + std::to_string(i), sc));
            storageNodes.push_back(storage.back()->nodeId());
            storage.back()->attachFaults(
                injector.profile(storageNodes.back()));
        }
    }

    ServerConfig
    serverConfig(unsigned cores) const
    {
        ServerConfig config;
        config.cores = cores;
        config.storageNodes = storageNodes;
        config.policy = ReplicationPolicy::ErasureCode;
        config.ec.dataShards = 4;
        config.ec.parityShards = 2;
        for (unsigned i = 0; i < storageNodes.size(); ++i)
            config.storageDomains.push_back(i % 3);
        config.blockCache = &cache;
        return config;
    }

    /** Crash every node of failure domain @p d, effective immediately. */
    void
    crashDomain(unsigned d)
    {
        for (unsigned i = 0; i < storageNodes.size(); ++i)
            if (i % 3 == d)
                injector.profile(storageNodes[i])->crash();
    }

    /** Shards of @p tag currently stored across the pool. */
    unsigned
    shardsStored(std::uint64_t tag) const
    {
        unsigned n = 0;
        for (const auto &s : storage) {
            const net::Payload *p = s->storedBlock(tag);
            if (p && p->ecK > 0)
                ++n;
        }
        return n;
    }
};

/** WriteRequest carrying cache entry @p block of @p bed's corpus. */
net::Message
craftWrite(const EcBed &bed, std::uint64_t tag, std::size_t block)
{
    const corpus::BlockCodecCache::Entry &e = bed.cache.entry(block);
    StorageHeader hdr;
    hdr.tag = tag;
    hdr.payloadSize = 4096;
    hdr.blockChecksum = e.plainChecksum;
    hdr.compressionEffort = 1;

    net::Message w;
    w.kind = net::MessageKind::WriteRequest;
    w.headerBytes = StorageHeader::wireSize;
    w.headerData = hdr.encodeShared();
    w.tag = tag;
    w.payload.data = e.plain;
    w.payload.size = 4096;
    w.payload.blockId = static_cast<std::uint32_t>(block + 1);
    w.payload.compressibility = e.ratio;
    return w;
}

net::Message
craftRead(const EcBed &bed, std::uint64_t tag, std::size_t block)
{
    net::Message r;
    r.kind = net::MessageKind::ReadRequest;
    r.headerBytes = StorageHeader::wireSize;
    r.tag = tag;
    r.payload.size = bed.cache.entry(block).compressed->size();
    r.payload.originalSize = 4096;
    // Functional reads carry an encoded header just like VmClient's —
    // SmartDS workers take the authoritative tag from the header bytes.
    StorageHeader hdr;
    hdr.tag = tag;
    hdr.payloadSize = 0;
    hdr.compressionEffort = 1;
    r.headerData = hdr.encodeShared();
    return r;
}

TEST(EcRecovery, CpuOnlyDegradedReadSurvivesDomainCrashByteForByte)
{
    EcBed bed;
    CpuOnlyServer server(bed.fabric, bed.memory, bed.serverConfig(4));

    constexpr std::size_t block = 3;
    const auto &entry = bed.cache.entry(block);
    net::Port *vm = bed.fabric.createPort("vm-raw");
    unsigned write_acks = 0, read_replies = 0;
    vm->onReceive([&](net::Message msg) {
        if (msg.kind == net::MessageKind::WriteReply) {
            ++write_acks;
            return;
        }
        if (msg.kind != net::MessageKind::ReadReply)
            return;
        ++read_replies;
        ASSERT_TRUE(msg.payload.data);
        EXPECT_EQ(*msg.payload.data, *entry.plain); // byte for byte
    });

    net::Message w = craftWrite(bed, /*tag=*/42, block);
    w.dst = server.frontNode();
    vm->send(std::move(w));
    bed.sim.run();
    ASSERT_EQ(write_acks, 1u);
    // RS(4, 2): one shard per node, the whole pool.
    EXPECT_EQ(bed.shardsStored(42), 6u);

    // A rack loses power: domain 0 = nodes 0 and 3 = exactly m shards.
    bed.crashDomain(0);

    constexpr unsigned reads = 5;
    for (unsigned i = 0; i < reads; ++i) {
        net::Message r = craftRead(bed, 42, block);
        r.dst = server.frontNode();
        vm->send(std::move(r));
        bed.sim.run();
    }
    EXPECT_EQ(read_replies, reads);

    const FailoverStats stats = server.failoverStats();
    EXPECT_EQ(stats.stripesEncoded, 1u);
    EXPECT_GT(stats.degradedReads, 0u);
    EXPECT_EQ(stats.readsUnserved, 0u);
    EXPECT_EQ(stats.corruptionsDetected, 0u);
}

TEST(EcRecovery, SmartDsDegradedReadSurvivesDomainCrashByteForByte)
{
    EcBed bed;
    ServerConfig config = bed.serverConfig(2);
    SmartDsServer::SmartDsConfig sd;
    sd.workersPerPort = 4;
    sd.device.functional = true;
    sd.device.blockCache = &bed.cache;
    SmartDsServer server(bed.fabric, bed.memory, config, sd);

    constexpr std::size_t block = 5;
    const auto &entry = bed.cache.entry(block);
    net::Port *vm = bed.fabric.createPort("vm-raw");
    unsigned write_acks = 0, read_replies = 0;
    vm->onReceive([&](net::Message msg) {
        if (msg.kind == net::MessageKind::WriteReply) {
            ++write_acks;
            return;
        }
        if (msg.kind != net::MessageKind::ReadReply)
            return;
        ++read_replies;
        ASSERT_TRUE(msg.payload.data);
        EXPECT_EQ(*msg.payload.data, *entry.plain); // byte for byte
    });

    net::Message w = craftWrite(bed, /*tag=*/43, block);
    w.dst = server.frontNode();
    w.dstQp = server.frontQp();
    vm->send(std::move(w));
    bed.sim.run();
    ASSERT_EQ(write_acks, 1u);
    EXPECT_EQ(bed.shardsStored(43), 6u);

    bed.crashDomain(0);

    constexpr unsigned reads = 5;
    for (unsigned i = 0; i < reads; ++i) {
        net::Message r = craftRead(bed, 43, block);
        r.dst = server.frontNode();
        r.dstQp = server.frontQp();
        vm->send(std::move(r));
        bed.sim.run();
    }
    EXPECT_EQ(read_replies, reads);

    const FailoverStats stats = server.failoverStats();
    EXPECT_EQ(stats.stripesEncoded, 1u);
    EXPECT_GT(stats.degradedReads, 0u);
    EXPECT_EQ(stats.readsUnserved, 0u);
    EXPECT_EQ(stats.corruptionsDetected, 0u);
}

// ---------------------------------------------------------------------
// Background reconstruction of abandoned shards
// ---------------------------------------------------------------------

TEST(EcRecovery, AbandonedShardIsReconstructedInBackground)
{
    // One node is dead from t=0 with zero retries and a k-of-n ack
    // quorum: every stripe still acknowledges at k durable shards, the
    // dead shard is abandoned and handed to maintenance as a fan-in-k
    // reconstruction, and the reconstruction re-homes it. 9 nodes so
    // the replacement choice has spare nodes outside the placement.
    EcBed bed(9);
    ServerConfig config = bed.serverConfig(4);
    config.failover.ackQuorum = 4; // = k
    config.failover.maxRetries = 0;
    CpuOnlyServer server(bed.fabric, bed.memory, config);
    bed.injector.profile(bed.storageNodes[0])->crash();

    host::CorePool repair_pool(bed.sim, "repair.cores", 2);
    MaintenanceService maint(bed.sim, "maint", repair_pool, bed.memory);
    maint.stop();
    server.setMaintenanceService(&maint);

    workload::VmClient::Config cc;
    cc.target = server.frontNode();
    cc.outstanding = 2;
    cc.corpus = &bed.corpus;
    cc.tagCounter = &bed.tags;
    cc.metrics = &bed.metrics;
    workload::VmClient client(bed.fabric, "vm", cc);
    bed.sim.runUntil(4 * ticksPerMillisecond);
    client.stop();
    bed.sim.run();

    ASSERT_GT(bed.metrics.issued, 10u);
    EXPECT_EQ(bed.metrics.completed, bed.metrics.issued);

    const FailoverStats stats = server.failoverStats();
    EXPECT_GT(stats.stripesEncoded, 0u);
    EXPECT_GT(stats.quorumCompletions, 0u);
    EXPECT_GT(stats.replicasAbandoned, 0u);
    EXPECT_GT(stats.repairsScheduled, 0u);
    EXPECT_GT(maint.reconstructionsCompleted(), 0u);
    EXPECT_GT(maint.reconstructionTicks(), 0u);

    // Reconstructed shards landed on healthy nodes: every completed
    // write eventually has all 6 shards durable somewhere.
    unsigned fully_durable = 0;
    for (std::uint64_t tag = 1; tag < bed.tags; ++tag)
        fully_durable += bed.shardsStored(tag) == 6 ? 1 : 0;
    EXPECT_GT(fully_durable, 0u);
}

// ---------------------------------------------------------------------
// Full experiment harness under EC
// ---------------------------------------------------------------------

TEST(EcRecovery, EcExperimentWithDomainCrashIsDeterministic)
{
    workload::ExperimentConfig config;
    config.design = Design::CpuOnly;
    config.cores = 4;
    config.clients = 3;
    config.storageServers = 6;
    config.failureDomains = 3;
    config.replicationPolicy = ReplicationPolicy::ErasureCode;
    config.ecDataShards = 4;
    config.ecParityShards = 2;
    config.functional = true;
    config.readFraction = 0.2;
    config.warmup = 1 * ticksPerMillisecond;
    config.window = 3 * ticksPerMillisecond;
    config.domainCrashAt = 1500_us;
    config.domainCrashOutage = 1 * ticksPerMillisecond;
    config.ackQuorum = 4;

    auto key = [](const workload::ExperimentResult &r) {
        return std::make_tuple(
            r.requestsCompleted, r.throughputGbps, r.p99LatencyUs,
            r.crashesInjected, r.failover.stripesEncoded,
            r.failover.degradedReads, r.failover.replicaTimeouts,
            r.failover.replicasAbandoned, r.failover.replicaBytesSent,
            r.repairsCompleted, r.repairsDeduped,
            r.reconstructionsCompleted, r.storageBlocksStored,
            r.storageBytesStored);
    };
    const auto a = workload::runWriteExperiment(config);
    const auto b = workload::runWriteExperiment(config);

    EXPECT_GT(a.requestsCompleted, 50u);
    EXPECT_GT(a.failover.stripesEncoded, 0u);
    // The domain crash took down exactly one 2-node domain.
    EXPECT_EQ(a.crashesInjected, 2u);
    EXPECT_EQ(key(a), key(b));
}

TEST(EcRecovery, SmartDsEcExperimentServesWrites)
{
    // SmartDS with the on-card EC engine, timing mode: the harness runs
    // end to end and accounts stripes + (k+m)/k amplified shard bytes.
    workload::ExperimentConfig config;
    config.design = Design::SmartDs;
    config.workersPerPort = 16;
    config.clients = 4;
    config.storageServers = 6;
    config.failureDomains = 3;
    config.replicationPolicy = ReplicationPolicy::ErasureCode;
    config.ecDataShards = 4;
    config.ecParityShards = 2;
    config.warmup = 500_us;
    config.window = 2 * ticksPerMillisecond;

    const auto r = workload::runWriteExperiment(config);
    EXPECT_GT(r.requestsCompleted, 50u);
    EXPECT_GT(r.failover.stripesEncoded, 0u);
    EXPECT_GT(r.storageBytesStored, 0u);
    EXPECT_GT(r.failover.replicaBytesSent, 0u);
}

} // namespace
} // namespace smartds::middletier
