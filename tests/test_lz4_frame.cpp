/**
 * @file
 * Tests for the LZ4 frame container: round trips over every corpus
 * profile and option combination, corruption detection at every layer
 * (descriptor, block data, block checksum, content checksum), and
 * incompressible-block raw storage.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.h"
#include "corpus/corpus.h"
#include "lz4/frame.h"

namespace smartds::lz4 {
namespace {

std::vector<std::uint8_t>
makeInput(corpus::Profile profile, std::size_t size, std::uint64_t seed)
{
    Rng rng(seed);
    return corpus::generate(profile, size, rng);
}

TEST(Lz4Frame, EmptyContentRoundTrips)
{
    const std::vector<std::uint8_t> empty;
    const auto frame = compressFrame(empty);
    const auto out = decompressFrame(frame);
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->empty());
}

TEST(Lz4Frame, MagicNumberLeadsTheFrame)
{
    const auto frame = compressFrame(makeInput(corpus::Profile::Text,
                                               1000, 1));
    ASSERT_GE(frame.size(), 4u);
    EXPECT_EQ(frame[0], 0x04);
    EXPECT_EQ(frame[1], 0x22);
    EXPECT_EQ(frame[2], 0x4D);
    EXPECT_EQ(frame[3], 0x18);
}

TEST(Lz4Frame, RejectsBadMagic)
{
    auto frame = compressFrame(makeInput(corpus::Profile::Text, 1000, 1));
    frame[0] ^= 0xff;
    EXPECT_FALSE(decompressFrame(frame).has_value());
}

TEST(Lz4Frame, RejectsCorruptDescriptor)
{
    auto frame = compressFrame(makeInput(corpus::Profile::Text, 1000, 1));
    frame[4] ^= 0x10; // flip the block-checksum flag without fixing HC
    EXPECT_FALSE(decompressFrame(frame).has_value());
}

TEST(Lz4Frame, DetectsBlockCorruption)
{
    auto frame = compressFrame(makeInput(corpus::Profile::Text, 50000, 2));
    // Flip a byte in the middle of the first block's data.
    frame[7 + 4 + 100] ^= 0x01;
    EXPECT_FALSE(decompressFrame(frame).has_value());
}

TEST(Lz4Frame, DetectsContentCorruptionWithoutBlockChecksums)
{
    FrameOptions options;
    options.blockChecksums = false;
    options.contentChecksum = true;
    const auto input = makeInput(corpus::Profile::Database, 40000, 3);
    auto frame = compressFrame(input, options);
    // Without block checksums a flipped byte may still decompress to
    // *something*; the content checksum must catch it (or the block
    // decoder rejects the malformed stream first).
    frame[7 + 4 + 33] ^= 0x80;
    EXPECT_FALSE(decompressFrame(frame).has_value());
}

TEST(Lz4Frame, TruncationRejected)
{
    const auto frame =
        compressFrame(makeInput(corpus::Profile::Xml, 30000, 4));
    for (std::size_t cut : {std::size_t{3}, std::size_t{6},
                            frame.size() / 2, frame.size() - 2}) {
        std::vector<std::uint8_t> t(frame.begin(),
                                    frame.begin() + static_cast<long>(cut));
        EXPECT_FALSE(decompressFrame(t).has_value()) << "cut " << cut;
    }
}

TEST(Lz4Frame, IncompressibleBlocksStoredRaw)
{
    Rng rng(5);
    std::vector<std::uint8_t> noise(100000);
    for (auto &b : noise)
        b = static_cast<std::uint8_t>(rng.below(256));
    const auto frame = compressFrame(noise);
    // Raw storage: frame ~ content + small per-block overhead.
    EXPECT_LT(frame.size(), noise.size() + 64);
    EXPECT_GE(frame.size(), noise.size());
    const auto out = decompressFrame(frame);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, noise);
}

TEST(Lz4Frame, CompressibleContentShrinks)
{
    const auto input = makeInput(corpus::Profile::Xml, 200000, 6);
    const auto frame = compressFrame(input);
    EXPECT_LT(frame.size(), input.size() / 2);
}

TEST(Lz4Frame, ValidateMatchesDecompress)
{
    const auto input = makeInput(corpus::Profile::Text, 10000, 7);
    auto frame = compressFrame(input);
    EXPECT_TRUE(validateFrame(frame));
    frame[frame.size() - 1] ^= 0x01; // content checksum
    EXPECT_FALSE(validateFrame(frame));
}

// ---------------------------------------------------------------------
// Property sweep: profiles x sizes x option combinations.
// ---------------------------------------------------------------------

using FrameParam = std::tuple<corpus::Profile, std::size_t, bool, bool>;

class Lz4FrameRoundTrip : public ::testing::TestWithParam<FrameParam>
{
};

TEST_P(Lz4FrameRoundTrip, Exact)
{
    const auto [profile, size, block_cs, content_cs] = GetParam();
    FrameOptions options;
    options.blockChecksums = block_cs;
    options.contentChecksum = content_cs;
    options.blockSize = 16 * 1024; // force multiple blocks
    const auto input = makeInput(profile, size, size * 13 + 1);
    const auto frame = compressFrame(input, options);
    const auto out = decompressFrame(frame);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, input);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesSizesOptions, Lz4FrameRoundTrip,
    ::testing::Combine(
        ::testing::Values(corpus::Profile::Text, corpus::Profile::Database,
                          corpus::Profile::Imaging),
        ::testing::Values(std::size_t{100}, std::size_t{16384},
                          std::size_t{100000}),
        ::testing::Bool(), ::testing::Bool()));

} // namespace
} // namespace smartds::lz4
