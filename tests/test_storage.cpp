/**
 * @file
 * Tests for the storage tier: append latency/bandwidth, ack addressing,
 * the functional store, and timing-mode fetch synthesis.
 */

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "sim/simulator.h"
#include "storage/storage_server.h"

namespace smartds::storage {
namespace {

using namespace smartds::time_literals;

struct StorageFixture : ::testing::Test
{
    sim::Simulator sim;
    net::Fabric fabric{sim};

    net::Message
    replica(net::NodeId dst, std::uint64_t tag, Bytes size)
    {
        net::Message msg;
        msg.dst = dst;
        msg.kind = net::MessageKind::WriteReplica;
        msg.headerBytes = 64;
        msg.tag = tag;
        msg.payload.size = size;
        msg.payload.compressed = true;
        msg.payload.originalSize = 4096;
        msg.payload.compressibility = 0.5;
        return msg;
    }
};

TEST_F(StorageFixture, AppendsAndAcks)
{
    StorageServer server(fabric, "st");
    net::Port *mt = fabric.createPort("mt");
    bool acked = false;
    Tick ack_at = 0;
    mt->onReceive([&](net::Message msg) {
        EXPECT_EQ(msg.kind, net::MessageKind::WriteReplicaAck);
        EXPECT_EQ(msg.tag, 5u);
        acked = true;
        ack_at = sim.now();
    });
    mt->send(replica(server.nodeId(), 5, 2048));
    sim.run();
    EXPECT_TRUE(acked);
    EXPECT_EQ(server.blocksStored(), 1u);
    EXPECT_EQ(server.bytesStored(), 2048u);
    // NVMe append latency (25 us) dominates the round trip.
    EXPECT_GT(toMicroseconds(ack_at), 25.0);
    EXPECT_LT(toMicroseconds(ack_at), 40.0);
}

TEST_F(StorageFixture, DiskSerialisesIngest)
{
    StorageServer::Config config;
    config.ingestBandwidth = 1e9; // 1 GB/s for visible serialisation
    StorageServer server(fabric, "st", config);
    net::Port *mt = fabric.createPort("mt");
    std::vector<Tick> acks;
    mt->onReceive([&](net::Message) { acks.push_back(sim.now()); });
    for (int i = 0; i < 4; ++i)
        mt->send(replica(server.nodeId(), static_cast<unsigned>(i),
                         1'000'000));
    sim.run();
    ASSERT_EQ(acks.size(), 4u);
    // Each 1 MB block takes 1 ms on the disk: acks ~1 ms apart.
    for (std::size_t i = 1; i < acks.size(); ++i)
        EXPECT_NEAR(toMicroseconds(acks[i] - acks[i - 1]), 1000.0, 150.0);
}

TEST_F(StorageFixture, FunctionalStoreKeepsBytes)
{
    StorageServer::Config config;
    config.functionalStore = true;
    StorageServer server(fabric, "st", config);
    net::Port *mt = fabric.createPort("mt");
    mt->onReceive([](net::Message) {});
    auto msg = replica(server.nodeId(), 9, 100);
    msg.payload.data = std::make_shared<const std::vector<std::uint8_t>>(
        std::vector<std::uint8_t>(100, 0xab));
    mt->send(std::move(msg));
    sim.run();
    const net::Payload *p = server.storedBlock(9);
    ASSERT_NE(p, nullptr);
    ASSERT_TRUE(p->data);
    EXPECT_EQ(p->data->size(), 100u);
    EXPECT_EQ((*p->data)[50], 0xab);
    EXPECT_EQ(server.storedBlock(999), nullptr);
}

TEST_F(StorageFixture, FetchReturnsStoredBlock)
{
    StorageServer::Config config;
    config.functionalStore = true;
    StorageServer server(fabric, "st", config);
    net::Port *mt = fabric.createPort("mt");
    net::Message reply;
    int replies = 0;
    mt->onReceive([&](net::Message msg) {
        if (msg.kind == net::MessageKind::ReadFetchReply) {
            reply = std::move(msg);
            ++replies;
        }
    });
    auto w = replica(server.nodeId(), 3, 2222);
    w.payload.data = std::make_shared<const std::vector<std::uint8_t>>(
        std::vector<std::uint8_t>(2222, 7));
    mt->send(std::move(w));
    sim.runUntil(1 * ticksPerMillisecond);

    net::Message fetch;
    fetch.dst = server.nodeId();
    fetch.kind = net::MessageKind::ReadFetch;
    fetch.headerBytes = 64;
    fetch.tag = 3;
    mt->send(std::move(fetch));
    sim.run();
    ASSERT_EQ(replies, 1);
    EXPECT_EQ(reply.payload.size, 2222u);
    ASSERT_TRUE(reply.payload.data);
}

TEST_F(StorageFixture, TimingFetchSynthesisesFromHints)
{
    StorageServer server(fabric, "st"); // no functional store
    net::Port *mt = fabric.createPort("mt");
    net::Message reply;
    mt->onReceive([&](net::Message msg) { reply = std::move(msg); });

    net::Message fetch;
    fetch.dst = server.nodeId();
    fetch.kind = net::MessageKind::ReadFetch;
    fetch.headerBytes = 64;
    fetch.tag = 1;
    fetch.payload.originalSize = 8192;
    fetch.payload.compressibility = 0.25;
    mt->send(std::move(fetch));
    sim.run();
    EXPECT_EQ(reply.kind, net::MessageKind::ReadFetchReply);
    EXPECT_EQ(reply.payload.size, 2048u); // 8192 x 0.25
    EXPECT_EQ(reply.payload.originalSize, 8192u);
    EXPECT_TRUE(reply.payload.compressed);
}

} // namespace
} // namespace smartds::storage
