/**
 * @file
 * Unit tests for the weighted fair-share resource: equal splits, caps,
 * water-filling redistribution, demand flows and transfer completion.
 */

#include <gtest/gtest.h>

#include "sim/fair_share.h"
#include "sim/simulator.h"

namespace smartds::sim {
namespace {

using namespace smartds::time_literals;

TEST(FairShare, SingleFlowGetsFullCapacity)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9); // 1 byte/ns
    auto *flow = res.createFlow("a");
    Tick done = 0;
    flow->transfer(1000, [&]() { done = sim.now(); });
    sim.run();
    // +1 tick scheduling guard allowed.
    EXPECT_NEAR(static_cast<double>(done), 1000.0 * 1000.0, 3.0);
}

TEST(FairShare, TwoEqualFlowsSplitCapacity)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *a = res.createFlow("a");
    auto *b = res.createFlow("b");
    Tick done_a = 0, done_b = 0;
    a->transfer(1000, [&]() { done_a = sim.now(); });
    b->transfer(1000, [&]() { done_b = sim.now(); });
    sim.run();
    // Both progress at half rate: ~2000 ns each.
    EXPECT_NEAR(static_cast<double>(done_a), 2000.0 * 1000.0, 5.0);
    EXPECT_NEAR(static_cast<double>(done_b), 2000.0 * 1000.0, 5.0);
}

TEST(FairShare, EarlyFinisherReleasesCapacity)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *a = res.createFlow("a");
    auto *b = res.createFlow("b");
    Tick done_a = 0, done_b = 0;
    a->transfer(500, [&]() { done_a = sim.now(); });
    b->transfer(1500, [&]() { done_b = sim.now(); });
    sim.run();
    // a: 500 bytes at 0.5 B/ns -> 1000 ns.
    EXPECT_NEAR(static_cast<double>(done_a), 1000.0 * 1000.0, 5.0);
    // b: 500 bytes shared (1000 ns) + remaining 1000 at full rate.
    EXPECT_NEAR(static_cast<double>(done_b), 2000.0 * 1000.0, 5.0);
}

TEST(FairShare, WeightsBiasAllocation)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *heavy = res.createFlow("heavy", 3.0);
    auto *light = res.createFlow("light", 1.0);
    Tick done_heavy = 0;
    heavy->transfer(750, [&]() { done_heavy = sim.now(); });
    light->transfer(10000, []() {});
    sim.runUntil(1_ms);
    // heavy gets 3/4 of capacity: 750 bytes at 0.75 B/ns -> 1000 ns.
    EXPECT_NEAR(static_cast<double>(done_heavy), 1000.0 * 1000.0, 5.0);
}

TEST(FairShare, RateCapLimitsAllocation)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *capped = res.createFlow("capped");
    capped->setRateCap(0.25e9);
    Tick done = 0;
    capped->transfer(1000, [&]() { done = sim.now(); });
    sim.run();
    EXPECT_NEAR(static_cast<double>(done), 4000.0 * 1000.0, 6.0);
}

TEST(FairShare, CapLeftoverRedistributedToElasticFlow)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *capped = res.createFlow("capped");
    capped->setRateCap(0.2e9);
    auto *elastic = res.createFlow("elastic");
    capped->transfer(100000, []() {});
    Tick done = 0;
    elastic->transfer(800, [&]() { done = sim.now(); });
    sim.runUntil(1_ms);
    // elastic gets 0.8 B/ns -> 1000 ns.
    EXPECT_NEAR(static_cast<double>(done), 1000.0 * 1000.0, 5.0);
}

TEST(FairShare, DemandFlowConsumesUtilization)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *hog = res.createFlow("hog");
    hog->setDemand(0.6e9);
    sim.runUntil(1_us);
    EXPECT_NEAR(res.utilization(), 0.6, 1e-9);
    EXPECT_NEAR(hog->allocatedRate(), 0.6e9, 1.0);
}

TEST(FairShare, DemandBeyondCapacityIsClamped)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *hog = res.createFlow("hog");
    hog->setDemand(5e9);
    sim.runUntil(1_us);
    EXPECT_NEAR(res.utilization(), 1.0, 1e-9);
    EXPECT_NEAR(hog->allocatedRate(), 1e9, 1.0);
}

TEST(FairShare, DemandFlowDeliveredBytesAccrue)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *hog = res.createFlow("hog");
    hog->setDemand(0.5e9);
    sim.schedule(10_us, []() {});
    sim.run();
    EXPECT_NEAR(hog->deliveredBytes(), 5000.0, 1.0);
}

TEST(FairShare, TransferFlowStarvedByDemandStillProgresses)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *hog = res.createFlow("hog");
    hog->setDemand(10e9); // wants 10x the capacity
    auto *dma = res.createFlow("dma");
    Tick done = 0;
    dma->transfer(1000, [&]() { done = sim.now(); });
    sim.runUntil(1_ms);
    // Fair split: dma gets half -> 2000 ns.
    EXPECT_NEAR(static_cast<double>(done), 2000.0 * 1000.0, 6.0);
}

TEST(FairShare, FifoWithinFlow)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *flow = res.createFlow("a");
    Tick first = 0, second = 0;
    flow->transfer(500, [&]() { first = sim.now(); });
    flow->transfer(500, [&]() { second = sim.now(); });
    sim.run();
    EXPECT_LT(first, second);
    EXPECT_NEAR(static_cast<double>(second), 1000.0 * 1000.0, 6.0);
}

TEST(FairShare, ZeroByteTransferCompletesImmediately)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *flow = res.createFlow("a");
    bool fired = false;
    flow->transfer(0, [&]() { fired = true; });
    sim.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(sim.now(), 0u);
}

TEST(FairShare, UtilizationDropsWhenFlowsGoIdle)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *flow = res.createFlow("a");
    flow->transfer(1000, []() {});
    sim.run();
    EXPECT_NEAR(res.utilization(), 0.0, 1e-9);
}

TEST(FairShare, ConservationAcrossManyFlows)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    constexpr int flows = 8;
    constexpr Bytes bytes = 1000;
    int completed = 0;
    for (int i = 0; i < flows; ++i) {
        auto *f = res.createFlow("f" + std::to_string(i));
        f->transfer(bytes, [&]() { ++completed; });
    }
    sim.run();
    EXPECT_EQ(completed, flows);
    // All 8000 bytes at 1 B/ns -> total 8 us regardless of sharing.
    EXPECT_NEAR(static_cast<double>(sim.now()), 8000.0 * 1000.0, 20.0);
}

} // namespace
} // namespace smartds::sim

namespace smartds::sim {
namespace {

using namespace smartds::time_literals;

TEST(FairShareAverage, EmaTracksSustainedLoad)
{
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *hog = res.createFlow("hog");
    hog->setDemand(0.5e9);
    sim.runUntil(200_us); // several tau
    EXPECT_NEAR(res.averageUtilization(), 0.5, 0.02);
    hog->setDemand(0.0);
    sim.runUntil(400_us);
    EXPECT_NEAR(res.averageUtilization(), 0.0, 0.02);
}

TEST(FairShareAverage, ShortTransferBurstsAverageBelowOne)
{
    // Instantaneous utilisation is 1.0 while an elastic transfer runs;
    // the average reflects the duty cycle instead.
    Simulator sim;
    FairShareResource res(sim, "mem", 1e9);
    auto *flow = res.createFlow("f");
    // 10% duty cycle: 10 us of transfer every 100 us.
    for (int i = 0; i < 10; ++i) {
        sim.schedule(static_cast<Tick>(i) * 100_us, [flow]() {
            flow->transfer(10'000, []() {}); // 10 us at full rate
        });
    }
    // Sample right at the end of a burst: the 10 us of full-rate
    // transfer raises the 20 us-horizon average partway toward 1,
    // and the 90 us idle gaps pull it back down well below saturation.
    sim.runUntil(910_us);
    EXPECT_LT(res.averageUtilization(), 0.7);
    EXPECT_GT(res.averageUtilization(), 0.1);
}

} // namespace
} // namespace smartds::sim
