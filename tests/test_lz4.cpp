/**
 * @file
 * Tests for the from-scratch LZ4 block codec: round-trip properties over
 * every corpus profile, size and effort; format edge cases; and safety
 * against malformed input.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "common/random.h"
#include "corpus/corpus.h"
#include "lz4/lz4.h"

namespace smartds::lz4 {
namespace {

std::vector<std::uint8_t>
roundTrip(const std::vector<std::uint8_t> &input, int effort)
{
    const auto compressed = compress(input, effort);
    const auto output = decompress(compressed, input.size());
    EXPECT_TRUE(output.has_value());
    return output.value_or(std::vector<std::uint8_t>{});
}

TEST(Lz4, EmptyInputRoundTrips)
{
    const std::vector<std::uint8_t> empty;
    const auto compressed = compress(empty, 1);
    EXPECT_EQ(compressed.size(), 1u); // a single zero token
    const auto out = decompress(compressed, 0);
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(out->empty());
}

TEST(Lz4, TinyInputsAreLiteralOnly)
{
    for (std::size_t n = 1; n <= 12; ++n) {
        std::vector<std::uint8_t> input(n, 0x41);
        const auto out = roundTrip(input, 1);
        EXPECT_EQ(out, input) << "size " << n;
    }
}

TEST(Lz4, AllZerosCompressesHard)
{
    std::vector<std::uint8_t> input(4096, 0);
    const auto compressed = compress(input, 1);
    EXPECT_LT(compressed.size(), 64u);
    EXPECT_EQ(roundTrip(input, 1), input);
}

TEST(Lz4, RepeatingPatternCompresses)
{
    std::vector<std::uint8_t> input;
    for (int i = 0; i < 512; ++i)
        for (std::uint8_t b : {0xde, 0xad, 0xbe, 0xef})
            input.push_back(b);
    const auto compressed = compress(input, 1);
    EXPECT_LT(compressed.size(), input.size() / 4);
    EXPECT_EQ(roundTrip(input, 1), input);
}

TEST(Lz4, RandomDataDoesNotExplode)
{
    Rng rng(123);
    std::vector<std::uint8_t> input(4096);
    for (auto &b : input)
        b = static_cast<std::uint8_t>(rng.below(256));
    const auto compressed = compress(input, 1);
    EXPECT_LE(compressed.size(), maxCompressedSize(input.size()));
    // Random bytes are incompressible: output close to input size.
    EXPECT_GT(compressed.size(), input.size() * 99 / 100);
    EXPECT_EQ(roundTrip(input, 1), input);
}

TEST(Lz4, OverlappingMatchRle)
{
    // "abcabcabc..." forces matches with offset < length (RLE-style
    // overlapping copy), the classic LZ4 decoder trap.
    std::vector<std::uint8_t> input;
    for (int i = 0; i < 2000; ++i)
        input.push_back(static_cast<std::uint8_t>('a' + (i % 3)));
    EXPECT_EQ(roundTrip(input, 1), input);
    EXPECT_EQ(roundTrip(input, 5), input);
}

TEST(Lz4, LongLiteralRunsUseExtendedLengths)
{
    // >15 literals then a match: exercises extended literal encoding.
    Rng rng(7);
    std::vector<std::uint8_t> input(600);
    for (auto &b : input)
        b = static_cast<std::uint8_t>(rng.below(256));
    // Append a long repeat of the prefix to force a long match too
    // (copy first: inserting a range of a vector into itself is UB).
    const std::vector<std::uint8_t> prefix(input.begin(),
                                           input.begin() + 500);
    input.insert(input.end(), prefix.begin(), prefix.end());
    EXPECT_EQ(roundTrip(input, 1), input);
}

TEST(Lz4, CompressFailsGracefullyWhenDstTooSmall)
{
    Rng rng(9);
    std::vector<std::uint8_t> input(1024);
    for (auto &b : input)
        b = static_cast<std::uint8_t>(rng.below(256));
    std::vector<std::uint8_t> dst(16);
    const auto n = compress(input.data(), input.size(), dst.data(),
                            dst.size(), 1);
    EXPECT_FALSE(n.has_value());
}

TEST(Lz4, DecompressRejectsTruncatedInput)
{
    std::vector<std::uint8_t> input(1000, 'x');
    auto compressed = compress(input, 1);
    for (std::size_t cut = 1; cut < compressed.size();
         cut += compressed.size() / 7 + 1) {
        std::vector<std::uint8_t> truncated(compressed.begin(),
                                            compressed.begin() +
                                                static_cast<long>(cut));
        std::vector<std::uint8_t> out(input.size());
        const auto n = decompress(truncated.data(), truncated.size(),
                                  out.data(), out.size());
        // Either rejected or shorter than the original: never OOB.
        if (n.has_value()) {
            EXPECT_LT(*n, input.size());
        }
    }
}

TEST(Lz4, DecompressRejectsBadOffsets)
{
    // token: 1 literal + match; offset 0 is invalid.
    const std::uint8_t bad_zero_offset[] = {0x10, 'a', 0x00, 0x00, 0x00};
    std::uint8_t out[64];
    EXPECT_FALSE(decompress(bad_zero_offset, sizeof(bad_zero_offset), out,
                            sizeof(out))
                     .has_value());
    // Offset 5 with only 1 byte of history is also invalid.
    const std::uint8_t bad_far_offset[] = {0x10, 'a', 0x05, 0x00, 0x00};
    EXPECT_FALSE(decompress(bad_far_offset, sizeof(bad_far_offset), out,
                            sizeof(out))
                     .has_value());
}

TEST(Lz4, DecompressRejectsOutputOverflow)
{
    std::vector<std::uint8_t> input(1000, 'x');
    const auto compressed = compress(input, 1);
    std::vector<std::uint8_t> small(100);
    EXPECT_FALSE(decompress(compressed.data(), compressed.size(),
                            small.data(), small.size())
                     .has_value());
}

// --- Wildcopy bounds audit (lz4.cpp match copy) -----------------------
//
// The decoder's 8-byte wildcopy may overshoot a match by up to 7 bytes,
// guarded by `op + match_len + 7 <= dst_cap`. These tests pin the guard:
// an exactly-sized destination (zero slack after the last match) must
// round-trip via the byte-forward fallback without touching a single
// byte past the buffer, and a too-small destination must be rejected
// before any copy. Run under the ASan preset, any overshoot is a
// heap-buffer-overflow, not a silent pass.

TEST(Lz4, DecompressIntoExactlySizedBuffer)
{
    // Long match ending flush against the end of dst: heap-allocate at
    // the exact size so ASan redzones begin at byte input.size().
    std::vector<std::uint8_t> input;
    for (int i = 0; i < 4096; ++i)
        input.push_back(static_cast<std::uint8_t>('a' + (i % 17)));
    const auto compressed = compress(input, 1);
    std::vector<std::uint8_t> out(input.size());
    const auto n =
        decompress(compressed.data(), compressed.size(), out.data(),
                   out.size());
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(*n, input.size());
    EXPECT_EQ(out, input);
}

TEST(Lz4, DecompressIntoExactlySizedBufferAllProfiles)
{
    Rng rng(2024);
    for (auto profile :
         {corpus::Profile::Text, corpus::Profile::Database,
          corpus::Profile::Executable, corpus::Profile::Imaging}) {
        const auto input = corpus::generate(profile, 8192, rng);
        const auto compressed = compress(input, 3);
        std::vector<std::uint8_t> out(input.size());
        const auto n = decompress(compressed.data(), compressed.size(),
                                  out.data(), out.size());
        ASSERT_TRUE(n.has_value());
        EXPECT_EQ(out, input);
    }
}

TEST(Lz4, DecompressRejectsBufferShortByOneToSeven)
{
    // 1..7 bytes short covers every wildcopy overshoot length: if the
    // guard ever let a chunked copy spill, one of these would write past
    // the allocation instead of returning nullopt.
    std::vector<std::uint8_t> input;
    for (int i = 0; i < 2048; ++i)
        input.push_back(static_cast<std::uint8_t>('A' + (i % 23)));
    const auto compressed = compress(input, 1);
    for (std::size_t shortfall = 1; shortfall <= 7; ++shortfall) {
        std::vector<std::uint8_t> out(input.size() - shortfall);
        const auto n = decompress(compressed.data(), compressed.size(),
                                  out.data(), out.size());
        EXPECT_FALSE(n.has_value()) << "shortfall " << shortfall;
    }
}

TEST(Lz4, DecompressRejectsFuzzedGarbage)
{
    // Random bytes must never crash or read/write out of bounds; most
    // inputs should be rejected, and accepted ones must fit the buffer.
    Rng rng(31337);
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<std::uint8_t> garbage(1 + rng.below(300));
        for (auto &b : garbage)
            b = static_cast<std::uint8_t>(rng.below(256));
        std::vector<std::uint8_t> out(512);
        const auto n = decompress(garbage.data(), garbage.size(), out.data(),
                                  out.size());
        if (n.has_value()) {
            EXPECT_LE(*n, out.size());
        }
    }
}

TEST(Lz4, HigherEffortNeverWorseRatioMuch)
{
    // Hash chains search strictly more candidates; on compressible data
    // the ratio should be at least as good (tiny tolerance for tie
    // breaks changing parse decisions).
    Rng rng(5);
    corpus::SyntheticCorpus corpus(1u << 20, 99);
    double sum1 = 0.0, sum9 = 0.0;
    for (int i = 0; i < 32; ++i) {
        const auto block = corpus.sampleBlock(4096, rng);
        sum1 += compressionRatio(block.data(), block.size(), 1);
        sum9 += compressionRatio(block.data(), block.size(), 9);
    }
    EXPECT_LE(sum9, sum1 * 1.01);
}

TEST(Lz4, EffortSpeedFactorMonotone)
{
    double prev = effortSpeedFactor(1);
    EXPECT_DOUBLE_EQ(prev, 1.0);
    for (int e = 2; e <= maxEffort; ++e) {
        const double f = effortSpeedFactor(e);
        EXPECT_LT(f, prev);
        EXPECT_GT(f, 0.0);
        prev = f;
    }
}

TEST(Lz4, CompressionRatioCappedAtOne)
{
    Rng rng(11);
    std::vector<std::uint8_t> noise(4096);
    for (auto &b : noise)
        b = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_LE(compressionRatio(noise.data(), noise.size(), 1), 1.0);
}

// ---------------------------------------------------------------------
// Property sweep: round trip across profiles x sizes x efforts.
// ---------------------------------------------------------------------

using RoundTripParam = std::tuple<corpus::Profile, std::size_t, int>;

class Lz4RoundTrip : public ::testing::TestWithParam<RoundTripParam>
{
};

TEST_P(Lz4RoundTrip, Exact)
{
    const auto [profile, size, effort] = GetParam();
    Rng rng(static_cast<std::uint64_t>(size) * 31 +
            static_cast<std::uint64_t>(effort));
    const auto input = corpus::generate(profile, size, rng);
    const auto compressed = compress(input, effort);
    ASSERT_LE(compressed.size(), maxCompressedSize(input.size()));
    const auto output = decompress(compressed, input.size());
    ASSERT_TRUE(output.has_value());
    EXPECT_EQ(*output, input);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesSizesEfforts, Lz4RoundTrip,
    ::testing::Combine(
        ::testing::Values(corpus::Profile::Text, corpus::Profile::Xml,
                          corpus::Profile::Database,
                          corpus::Profile::Executable,
                          corpus::Profile::Scientific,
                          corpus::Profile::Imaging),
        ::testing::Values(std::size_t{13}, std::size_t{100},
                          std::size_t{4096}, std::size_t{65536}),
        ::testing::Values(1, 3, 6, 9)));

} // namespace
} // namespace smartds::lz4
