/**
 * @file
 * Tests for the synthetic Silesia-like corpus: determinism, per-profile
 * compressibility ordering, block sampling and the ratio sampler.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "common/random.h"
#include "corpus/corpus.h"
#include "lz4/lz4.h"

namespace smartds::corpus {
namespace {

double
profileRatio(Profile p, int effort = 1)
{
    Rng rng(77);
    const auto data = generate(p, 512 * 1024, rng);
    double sum = 0.0;
    int n = 0;
    for (std::size_t off = 0; off + 4096 <= data.size(); off += 8192) {
        sum += lz4::compressionRatio(data.data() + off, 4096, effort);
        ++n;
    }
    return sum / n;
}

TEST(Corpus, GeneratorsAreDeterministicPerSeed)
{
    for (Profile p : allProfiles()) {
        Rng a(123), b(123);
        EXPECT_EQ(generate(p, 10000, a), generate(p, 10000, b))
            << profileName(p);
    }
}

TEST(Corpus, GeneratorsProduceRequestedSize)
{
    Rng rng(1);
    for (Profile p : allProfiles()) {
        for (std::size_t n : {std::size_t{1}, std::size_t{100},
                              std::size_t{4096}, std::size_t{100001}}) {
            EXPECT_EQ(generate(p, n, rng).size(), n) << profileName(p);
        }
    }
}

TEST(Corpus, ProfileCompressibilityOrdering)
{
    // Structured data compresses hardest, imagery barely at all — the
    // ordering that makes the mixture Silesia-like.
    const double db = profileRatio(Profile::Database);
    const double xml = profileRatio(Profile::Xml);
    const double text = profileRatio(Profile::Text);
    const double exe = profileRatio(Profile::Executable);
    const double sci = profileRatio(Profile::Scientific);
    const double img = profileRatio(Profile::Imaging);

    EXPECT_LT(db, text);
    EXPECT_LT(xml, text);
    EXPECT_LT(text, exe);
    EXPECT_LT(exe, sci);
    EXPECT_LE(sci, img);
    EXPECT_GT(img, 0.95);
    EXPECT_LT(db, 0.45);
}

TEST(Corpus, MixtureMeanRatioNearPaperImplied)
{
    // The paper's throughput arithmetic implies ~0.5-0.6 compressed size
    // for 4 KiB blocks of Silesia-like data under LZ4.
    SyntheticCorpus corpus(2u << 20, 42);
    RatioSampler sampler(corpus, 4096, 1, 256, 7);
    EXPECT_GT(sampler.mean(), 0.45);
    EXPECT_LT(sampler.mean(), 0.65);
}

TEST(Corpus, CorpusDeterministicPerSeed)
{
    SyntheticCorpus a(1u << 20, 5), b(1u << 20, 5), c(1u << 20, 6);
    EXPECT_EQ(a.bytes(), b.bytes());
    EXPECT_NE(a.bytes(), c.bytes());
}

TEST(Corpus, SampleBlockIsAlignedSlice)
{
    SyntheticCorpus corpus(1u << 20, 5);
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        const std::uint8_t *p = corpus.sampleBlockPtr(4096, rng);
        const auto offset = static_cast<std::size_t>(
            p - corpus.bytes().data());
        EXPECT_EQ(offset % 4096, 0u);
        EXPECT_LE(offset + 4096, corpus.size());
    }
}

TEST(Corpus, SampleBlockCopiesMatchPointers)
{
    SyntheticCorpus corpus(1u << 20, 5);
    Rng a(9), b(9);
    const auto copy = corpus.sampleBlock(4096, a);
    const std::uint8_t *p = corpus.sampleBlockPtr(4096, b);
    EXPECT_EQ(0, std::memcmp(copy.data(), p, 4096));
}

TEST(Corpus, RatioSamplerDrawsFromRecordedPopulation)
{
    SyntheticCorpus corpus(1u << 20, 42);
    RatioSampler sampler(corpus, 4096, 1, 128, 3);
    EXPECT_EQ(sampler.size(), 128u);
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double r = sampler.sample(rng);
        EXPECT_GT(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
}

TEST(Corpus, RatioSamplerMeanStableAcrossSampleCount)
{
    SyntheticCorpus corpus(2u << 20, 42);
    RatioSampler small(corpus, 4096, 1, 64, 3);
    RatioSampler big(corpus, 4096, 1, 512, 3);
    EXPECT_NEAR(small.mean(), big.mean(), 0.08);
}

TEST(Corpus, HigherEffortImprovesStructuredRatio)
{
    const double fast = profileRatio(Profile::Xml, 1);
    const double hard = profileRatio(Profile::Xml, 9);
    EXPECT_LE(hard, fast + 1e-9);
}

TEST(Corpus, ProfileNamesAreUnique)
{
    std::set<std::string> names;
    for (Profile p : allProfiles())
        names.insert(profileName(p));
    EXPECT_EQ(names.size(), allProfiles().size());
}

} // namespace
} // namespace smartds::corpus
