/**
 * @file
 * Tests for the host memory model: loaded-latency curve, DDIO residency
 * model and the MLC pressure injector.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.h"
#include "mem/mlc_injector.h"
#include "sim/simulator.h"

namespace smartds::mem {
namespace {

using namespace smartds::time_literals;

TEST(MemorySystem, IdleLatencyWhenUnloaded)
{
    sim::Simulator sim;
    MemorySystem memory(sim, "mem", {});
    EXPECT_EQ(memory.loadedLatency(), memory.config().idleLatency);
}

TEST(MemorySystem, LatencyGrowsMonotonicallyWithUtilization)
{
    sim::Simulator sim;
    MemorySystem memory(sim, "mem", {});
    auto *hog = memory.createFlow("hog");
    Tick prev = memory.loadedLatency();
    for (double frac : {0.25, 0.5, 0.75, 0.9, 1.0}) {
        hog->setDemand(frac * memory.capacity());
        // Let the utilisation average converge to the new load.
        sim.runUntil(sim.now() + 200_us);
        const Tick lat = memory.loadedLatency();
        EXPECT_GE(lat, prev) << "at " << frac;
        prev = lat;
    }
    // At saturation the curve reaches idle + loadedExtra.
    EXPECT_NEAR(static_cast<double>(prev),
                static_cast<double>(memory.config().idleLatency +
                                    memory.config().loadedExtraLatency),
                1e7 * 0.01);
}

TEST(MemorySystem, CurveIsGentleAtLowUtilization)
{
    sim::Simulator sim;
    MemorySystem memory(sim, "mem", {});
    auto *hog = memory.createFlow("hog");
    hog->setDemand(0.3 * memory.capacity());
    sim.runUntil(200_us);
    // u^3 at 0.3 is <3% of the extra latency.
    EXPECT_LT(memory.loadedLatency(),
              memory.config().idleLatency + ticksPerMicrosecond / 5);
}

TEST(DdioModel, CapacityIsWayFraction)
{
    DdioModel ddio;
    // 16 MiB x 2/11 ways.
    EXPECT_EQ(ddio.ddioCapacity(), mebibytes(16) * 2 / 11);
}

TEST(DdioModel, RecentWritesHitOldWritesMiss)
{
    DdioModel ddio;
    const BytesPerSecond rate = 12.5e9; // 100 Gbps of DMA writes
    // Residency = capacity / rate ~ 244 us at 100 Gbps.
    EXPECT_TRUE(ddio.readHits(10 * ticksPerMicrosecond, rate));
    EXPECT_FALSE(ddio.readHits(1 * ticksPerMillisecond, rate));
}

TEST(DdioModel, DisabledNeverHits)
{
    DdioModel::Config config;
    config.enabled = false;
    DdioModel ddio(config);
    EXPECT_FALSE(ddio.readHits(0, 1.0));
    EXPECT_FALSE(ddio.writesContained(1));
}

TEST(DdioModel, IntermediateBufferWorkingSetDefeatsDdio)
{
    // Section 3.2: ~32 ms lifetime at 100 Gbps -> ~400 MB working set,
    // far beyond the ~3 MiB of DDIO ways.
    DdioModel ddio;
    const Bytes working_set = static_cast<Bytes>(
        12.5e9 * toSeconds(calibration::intermediateBufferLifetime));
    EXPECT_GT(working_set, 100 * ddio.ddioCapacity());
    EXPECT_FALSE(ddio.writesContained(working_set));
}

TEST(MlcInjector, OffDelayMeansZeroDemand)
{
    sim::Simulator sim;
    MemorySystem memory(sim, "mem", {});
    MlcInjector mlc(memory, {});
    EXPECT_DOUBLE_EQ(mlc.demandFor(MlcInjector::offDelay), 0.0);
}

TEST(MlcInjector, ZeroDelayDemandsPerCoreMax)
{
    sim::Simulator sim;
    MemorySystem memory(sim, "mem", {});
    MlcInjector::Config config;
    config.cores = 16;
    MlcInjector mlc(memory, config);
    EXPECT_NEAR(mlc.demandFor(0), 16 * config.perCoreMax,
                16 * config.perCoreMax * 1e-9);
}

TEST(MlcInjector, DemandDecreasesWithDelay)
{
    sim::Simulator sim;
    MemorySystem memory(sim, "mem", {});
    MlcInjector mlc(memory, {});
    double prev = mlc.demandFor(0);
    for (unsigned delay : {10u, 50u, 200u, 1000u, 5000u}) {
        const double d = mlc.demandFor(delay);
        EXPECT_LT(d, prev);
        prev = d;
    }
}

TEST(MlcInjector, AchievedRateBoundedByCapacity)
{
    sim::Simulator sim;
    MemorySystem memory(sim, "mem", {});
    MlcInjector::Config config;
    config.cores = 48;
    MlcInjector mlc(memory, config);
    mlc.setDelayCycles(0);
    sim.runUntil(10_us);
    EXPECT_LE(mlc.achievedRate(), memory.capacity() * 1.0001);
    EXPECT_GT(mlc.achievedRate(), memory.capacity() * 0.99);
}

TEST(MlcInjector, FairShareLeavesRoomForDmaFlows)
{
    sim::Simulator sim;
    MemorySystem memory(sim, "mem", {});
    MlcInjector mlc(memory, {});
    mlc.setDelayCycles(0);
    auto *dma = memory.createFlow("dma");
    Tick done = 0;
    // 12 GB at 120 GB/s capacity: fair share gives dma >= half.
    dma->transfer(1'200'000, [&]() { done = sim.now(); });
    sim.runUntil(1_ms);
    EXPECT_GT(done, 0u);
    EXPECT_LT(done, 25_us); // would be 10 us alone, <= 20 us at half rate
}

} // namespace
} // namespace smartds::mem
