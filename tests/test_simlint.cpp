// Drives the simlint rule engine over tests/simlint_fixtures/: every
// seeded violation must be reported with its exact rule id and line, and
// every false-positive / suppression case must stay silent. The fixture
// directory is excluded from the repo-wide lint_tree run (rules.toml), so
// these files exist only for this test.

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "linter.h"

namespace {

using simlint::Config;
using simlint::Finding;
using simlint::Severity;
using simlint::Source;

std::string
fixturePath(const std::string &name)
{
    return std::string(SIMLINT_FIXTURE_DIR) + "/" + name;
}

Source
loadFixture(const std::string &name)
{
    std::ifstream in(fixturePath(name));
    EXPECT_TRUE(in.good()) << "missing fixture " << name;
    std::ostringstream text;
    text << in.rdbuf();
    return Source{name, text.str()};
}

/** Load a fixture but lint it under a synthetic repo path — the
 *  shared-sim-state rule keys its entry-point roots off src/... paths. */
Source
loadFixtureAs(const std::string &name, const std::string &path)
{
    Source source = loadFixture(name);
    source.path = path;
    return source;
}

/** (file, line, rule) triples, sorted, for exact-set comparison. */
using Triple = std::tuple<std::string, int, std::string>;

std::vector<Triple>
triples(const std::vector<Finding> &findings)
{
    std::vector<Triple> out;
    for (const Finding &f : findings)
        out.emplace_back(f.file, f.line, f.rule);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Triple>
lintFixture(const std::string &name)
{
    return triples(simlint::lint({loadFixture(name)}, Config{}));
}

TEST(SimlintFixtures, WallClock)
{
    EXPECT_EQ(lintFixture("wall_clock.cpp"),
              (std::vector<Triple>{
                  {"wall_clock.cpp", 10, "wall-clock"},
                  {"wall_clock.cpp", 17, "wall-clock"},
              }));
}

TEST(SimlintFixtures, RawRand)
{
    EXPECT_EQ(lintFixture("raw_rand.cpp"),
              (std::vector<Triple>{
                  {"raw_rand.cpp", 10, "raw-rand"},
                  {"raw_rand.cpp", 17, "raw-rand"},
              }));
}

TEST(SimlintFixtures, UnorderedIter)
{
    EXPECT_EQ(lintFixture("unordered_iter.cpp"),
              (std::vector<Triple>{
                  {"unordered_iter.cpp", 18, "unordered-iter"},
                  {"unordered_iter.cpp", 27, "unordered-iter"},
              }));
}

TEST(SimlintFixtures, MutableGlobal)
{
    EXPECT_EQ(lintFixture("mutable_global.cpp"),
              (std::vector<Triple>{
                  {"mutable_global.cpp", 6, "mutable-global"},
                  {"mutable_global.cpp", 13, "mutable-global"},
              }));
}

TEST(SimlintFixtures, RawIo)
{
    EXPECT_EQ(lintFixture("raw_io.cpp"),
              (std::vector<Triple>{
                  {"raw_io.cpp", 10, "raw-io"},
                  {"raw_io.cpp", 16, "raw-io"},
              }));
}

TEST(SimlintFixtures, NakedNew)
{
    EXPECT_EQ(lintFixture("naked_new.cpp"),
              (std::vector<Triple>{
                  {"naked_new.cpp", 14, "naked-new"},
              }));
}

TEST(SimlintFixtures, TickFloat)
{
    EXPECT_EQ(lintFixture("tick_float.cpp"),
              (std::vector<Triple>{
                  {"tick_float.cpp", 10, "tick-float"},
                  {"tick_float.cpp", 16, "tick-float"},
              }));
}

TEST(SimlintFixtures, MissingNodiscard)
{
    EXPECT_EQ(lintFixture("missing_nodiscard.h"),
              (std::vector<Triple>{
                  {"missing_nodiscard.h", 10, "missing-nodiscard"},
              }));
}

TEST(SimlintFixtures, BlockCopy)
{
    // Line 13 is the declaration, line 21 the per-request copy; the
    // sanctioned sampleBlockPtr()/sampleBlockIndex() spellings and the
    // justified suppression stay silent.
    EXPECT_EQ(lintFixture("block_copy.cpp"),
              (std::vector<Triple>{
                  {"block_copy.cpp", 13, "block-copy"},
                  {"block_copy.cpp", 21, "block-copy"},
              }));
}

TEST(SimlintFixtures, ZipfApprox)
{
    // Line 8 is the declaration, line 15 the legacy draw; the exact
    // Rng::zipf() spelling and the justified suppression stay silent.
    EXPECT_EQ(lintFixture("zipf_approx.cpp"),
              (std::vector<Triple>{
                  {"zipf_approx.cpp", 8, "zipf-approx"},
                  {"zipf_approx.cpp", 15, "zipf-approx"},
              }));
}

TEST(SimlintFixtures, CrossShardState)
{
    // Line 25 schedules onto a fetched domain via `.`, line 31 via a
    // pointer's `->`; the sanctioned ClusterSim::post() call, the
    // read-only domain(d) fetch, and the justified suppression all
    // stay silent.
    EXPECT_EQ(lintFixture("cross_shard_state.cpp"),
              (std::vector<Triple>{
                  {"cross_shard_state.cpp", 25, "cross-shard-state"},
                  {"cross_shard_state.cpp", 31, "cross-shard-state"},
              }));
}

TEST(SimlintFixtures, Suppressions)
{
    // Line 10: justified suppression silences the finding entirely.
    // Line 16: suppression without justification is itself a finding,
    //          but the named (known) rule is still honoured.
    // Line 22: unknown rule suppresses nothing, and is a finding.
    EXPECT_EQ(lintFixture("suppression.cpp"),
              (std::vector<Triple>{
                  {"suppression.cpp", 16, "bad-suppression"},
                  {"suppression.cpp", 22, "bad-suppression"},
                  {"suppression.cpp", 22, "raw-io"},
              }));
}

TEST(SimlintFixtures, CrossFileUnorderedIndex)
{
    // A container declared in one file and iterated in another is still
    // caught: the unordered-decl index spans the whole source set.
    const Source header{"registry.h",
                        "#pragma once\n"
                        "#include <unordered_map>\n"
                        "struct Registry\n"
                        "{\n"
                        "    std::unordered_map<int, int> entries;\n"
                        "};\n"};
    const Source user{"user.cpp",
                      "#include \"registry.h\"\n"
                      "int sum(const Registry &r)\n"
                      "{\n"
                      "    int s = 0;\n"
                      "    for (const auto &kv : r.entries)\n"
                      "        s += kv.second;\n"
                      "    return s;\n"
                      "}\n"};
    EXPECT_EQ(triples(simlint::lint({header, user}, Config{})),
              (std::vector<Triple>{
                  {"user.cpp", 5, "unordered-iter"},
              }));
}

TEST(SimlintFixtures, SharedSimState)
{
    // mutable-global is switched off here to isolate the cross-TU rule;
    // the repo's rules.toml documents the same precedence (shared-sim-
    // state supersedes mutable-global inside the entry directories).
    Config config;
    std::string error;
    ASSERT_TRUE(parseRulesConfig(
        "[rules.mutable-global]\nseverity = \"off\"\n", config, error))
        << error;

    // Line 7: declared in an entry dir. Line 8/21 (stats.cpp): only
    // findable through the kernel.cpp -> bumpHits()/recordSample() call
    // edges. coldCounter (line 10) is referenced only by the unreached
    // orphanTouch() and must stay silent; so must the suppressed and
    // const globals.
    EXPECT_EQ(
        triples(simlint::lint(
            {loadFixtureAs("shared_sim_state_kernel.cpp",
                           "src/sim/kernel.cpp"),
             loadFixtureAs("shared_sim_state_common.cpp",
                           "src/common/stats.cpp")},
            config)),
        (std::vector<Triple>{
            {"src/common/stats.cpp", 8, "shared-sim-state"},
            {"src/common/stats.cpp", 21, "shared-sim-state"},
            {"src/sim/kernel.cpp", 7, "shared-sim-state"},
        }));
}

TEST(SimlintFixtures, SharedSimStateNeedsAReachableRoot)
{
    // The same common file linted without the kernel TU has no entry
    // point reaching it: nothing may fire.
    Config config;
    std::string error;
    ASSERT_TRUE(parseRulesConfig(
        "[rules.mutable-global]\nseverity = \"off\"\n", config, error))
        << error;
    EXPECT_TRUE(triples(simlint::lint(
                            {loadFixtureAs("shared_sim_state_common.cpp",
                                           "src/common/stats.cpp")},
                            config))
                    .empty());
}

TEST(SimlintFixtures, PtrKeyedContainer)
{
    // Lines 15-17: map/set/unordered_map keyed by pointer. The explicit
    // comparator (25), pointer-as-value (26), vector (27) and the
    // suppressed declaration (21) stay silent.
    EXPECT_EQ(lintFixture("ptr_keyed_container.cpp"),
              (std::vector<Triple>{
                  {"ptr_keyed_container.cpp", 15, "ptr-keyed-container"},
                  {"ptr_keyed_container.cpp", 16, "ptr-keyed-container"},
                  {"ptr_keyed_container.cpp", 17, "ptr-keyed-container"},
              }));
}

TEST(SimlintFixtures, EventHandleMisuse)
{
    // Line 15: cancel through a moved-from handle. Line 30: raw int slot
    // index. The revived handle (24), the suppressed shard index (34)
    // and the un-slot-named member (36) stay silent.
    EXPECT_EQ(lintFixture("event_handle_misuse.cpp"),
              (std::vector<Triple>{
                  {"event_handle_misuse.cpp", 15, "event-handle-misuse"},
                  {"event_handle_misuse.cpp", 30, "event-handle-misuse"},
              }));
}

TEST(SimlintFixtures, SpanImbalance)
{
    // Line 13: opened, never closed. Line 20 is suppressed.
    EXPECT_EQ(lintFixture("span_imbalance.cpp"),
              (std::vector<Triple>{
                  {"span_imbalance.cpp", 13, "span-imbalance"},
              }));
    // Open + close in the same file: balanced, silent.
    EXPECT_TRUE(lintFixture("span_balanced.cpp").empty());
}

TEST(SimlintFixtures, SpanClosedInIncludeNeighbourIsBalanced)
{
    // The close may live across the include edge (either direction);
    // here the header closes what the including file opens.
    const Source header{"trace_ctx.h",
                        "struct TraceContext\n"
                        "{\n"
                        "    unsigned long long mark;\n"
                        "};\n"
                        "inline void\n"
                        "closeSpan(TraceContext &trace)\n"
                        "{\n"
                        "    trace.mark = 0;\n"
                        "}\n"};
    const Source user{"user.cpp",
                      "#include \"trace_ctx.h\"\n"
                      "void\n"
                      "openSpan(TraceContext &trace,\n"
                      "         unsigned long long now)\n"
                      "{\n"
                      "    trace.mark = now;\n"
                      "}\n"};
    EXPECT_TRUE(triples(simlint::lint({header, user}, Config{})).empty());
}

TEST(SimlintDiff, OnlyFindingsNewSinceBaseSurvive)
{
    // The base has the same printf, just on a different line: diffing by
    // (file, rule, offending line text) drops it, keeping only the
    // naked-new that the "change" introduced.
    const Source base{"a.cpp",
                      "#include <cstdio>\n"
                      "void f()\n"
                      "{\n"
                      "    printf(\"x\");\n"
                      "}\n"};
    const Source current{"a.cpp",
                         "#include <cstdio>\n"
                         "void f()\n"
                         "{\n"
                         "    int *p = new int(5);\n"
                         "    (void)p;\n"
                         "    printf(\"x\");\n"
                         "}\n"};
    const auto baseFindings = simlint::lint({base}, Config{});
    const auto currentFindings = simlint::lint({current}, Config{});
    EXPECT_EQ(triples(baseFindings),
              (std::vector<Triple>{{"a.cpp", 4, "raw-io"}}));
    const auto fresh = simlint::diffNewFindings(
        currentFindings, {current}, baseFindings, {base});
    EXPECT_EQ(triples(fresh),
              (std::vector<Triple>{{"a.cpp", 4, "naked-new"}}));
}

TEST(SimlintDiff, FileAbsentFromBaseIsEntirelyNew)
{
    const Source current{"b.cpp",
                         "#include <cstdio>\n"
                         "void g() { printf(\"y\"); }\n"};
    const auto findings = simlint::lint({current}, Config{});
    const auto fresh =
        simlint::diffNewFindings(findings, {current}, {}, {});
    EXPECT_EQ(triples(fresh), triples(findings));
    EXPECT_FALSE(fresh.empty());
}

TEST(SimlintReporters, SarifNamesRulesAndLocations)
{
    const auto findings =
        simlint::lint({loadFixture("naked_new.cpp")}, Config{});
    ASSERT_EQ(findings.size(), 1u);
    const std::string sarif = simlint::renderSarif(findings);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"simlint\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"naked-new\""), std::string::npos);
    EXPECT_NE(sarif.find("\"uri\": \"naked_new.cpp\""), std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 14"), std::string::npos);
    // Every known rule is declared in the driver's rule table, including
    // the cross-TU ones.
    for (const std::string &rule : simlint::allRules())
        EXPECT_NE(sarif.find("{\"id\": \"" + rule + "\"}"),
                  std::string::npos)
            << rule;
}

TEST(SimlintConfig, SeverityAllowAndExclude)
{
    Config config;
    std::string error;
    const std::string toml = "# comment\n"
                             "[lint]\n"
                             "exclude = [\"vendored\"]\n"
                             "\n"
                             "[rules.raw-io]\n"
                             "severity = \"off\"\n"
                             "\n"
                             "[rules.wall-clock]\n"
                             "severity = \"warn\"\n"
                             "allow = [\"bench\"]\n";
    ASSERT_TRUE(parseRulesConfig(toml, config, error)) << error;
    EXPECT_EQ(config.severityFor("raw-io"), Severity::Off);
    EXPECT_EQ(config.severityFor("wall-clock"), Severity::Warn);
    EXPECT_EQ(config.severityFor("naked-new"), Severity::Error);
    EXPECT_TRUE(config.allowsPath("wall-clock", "bench/micro.cpp"));
    EXPECT_FALSE(config.allowsPath("wall-clock", "src/micro.cpp"));
    EXPECT_EQ(config.exclude, std::vector<std::string>{"vendored"});

    // severity = "off" drops findings; allow prefixes drop per path.
    const Source noisy{"bench/noisy.cpp",
                       "#include <chrono>\n"
                       "#include <cstdio>\n"
                       "void f()\n"
                       "{\n"
                       "    auto t = std::chrono::steady_clock::now();\n"
                       "    (void)t;\n"
                       "    printf(\"x\");\n"
                       "}\n"};
    const auto found = triples(simlint::lint({noisy}, config));
    EXPECT_TRUE(found.empty()) << simlint::renderText(
        simlint::lint({noisy}, config));
}

TEST(SimlintConfig, RejectsMalformedToml)
{
    Config config;
    std::string error;
    EXPECT_FALSE(parseRulesConfig("[rules.raw-io]\nseverity = \"loud\"\n",
                                  config, error));
    EXPECT_FALSE(error.empty());
}

TEST(SimlintReporters, JsonAndTextNameEveryFinding)
{
    const auto findings =
        simlint::lint({loadFixture("naked_new.cpp")}, Config{});
    ASSERT_EQ(findings.size(), 1u);
    const std::string json = simlint::renderJson(findings);
    EXPECT_NE(json.find("\"rule\":\"naked-new\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"line\":14"), std::string::npos) << json;
    const std::string text = simlint::renderText(findings);
    EXPECT_NE(text.find("naked_new.cpp:14:"), std::string::npos) << text;
}

} // namespace
