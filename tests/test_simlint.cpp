// Drives the simlint rule engine over tests/simlint_fixtures/: every
// seeded violation must be reported with its exact rule id and line, and
// every false-positive / suppression case must stay silent. The fixture
// directory is excluded from the repo-wide lint_tree run (rules.toml), so
// these files exist only for this test.

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "linter.h"

namespace {

using simlint::Config;
using simlint::Finding;
using simlint::Severity;
using simlint::Source;

std::string
fixturePath(const std::string &name)
{
    return std::string(SIMLINT_FIXTURE_DIR) + "/" + name;
}

Source
loadFixture(const std::string &name)
{
    std::ifstream in(fixturePath(name));
    EXPECT_TRUE(in.good()) << "missing fixture " << name;
    std::ostringstream text;
    text << in.rdbuf();
    return Source{name, text.str()};
}

/** (file, line, rule) triples, sorted, for exact-set comparison. */
using Triple = std::tuple<std::string, int, std::string>;

std::vector<Triple>
triples(const std::vector<Finding> &findings)
{
    std::vector<Triple> out;
    for (const Finding &f : findings)
        out.emplace_back(f.file, f.line, f.rule);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Triple>
lintFixture(const std::string &name)
{
    return triples(simlint::lint({loadFixture(name)}, Config{}));
}

TEST(SimlintFixtures, WallClock)
{
    EXPECT_EQ(lintFixture("wall_clock.cpp"),
              (std::vector<Triple>{
                  {"wall_clock.cpp", 10, "wall-clock"},
                  {"wall_clock.cpp", 17, "wall-clock"},
              }));
}

TEST(SimlintFixtures, RawRand)
{
    EXPECT_EQ(lintFixture("raw_rand.cpp"),
              (std::vector<Triple>{
                  {"raw_rand.cpp", 10, "raw-rand"},
                  {"raw_rand.cpp", 17, "raw-rand"},
              }));
}

TEST(SimlintFixtures, UnorderedIter)
{
    EXPECT_EQ(lintFixture("unordered_iter.cpp"),
              (std::vector<Triple>{
                  {"unordered_iter.cpp", 18, "unordered-iter"},
                  {"unordered_iter.cpp", 27, "unordered-iter"},
              }));
}

TEST(SimlintFixtures, MutableGlobal)
{
    EXPECT_EQ(lintFixture("mutable_global.cpp"),
              (std::vector<Triple>{
                  {"mutable_global.cpp", 6, "mutable-global"},
                  {"mutable_global.cpp", 13, "mutable-global"},
              }));
}

TEST(SimlintFixtures, RawIo)
{
    EXPECT_EQ(lintFixture("raw_io.cpp"),
              (std::vector<Triple>{
                  {"raw_io.cpp", 10, "raw-io"},
                  {"raw_io.cpp", 16, "raw-io"},
              }));
}

TEST(SimlintFixtures, NakedNew)
{
    EXPECT_EQ(lintFixture("naked_new.cpp"),
              (std::vector<Triple>{
                  {"naked_new.cpp", 14, "naked-new"},
              }));
}

TEST(SimlintFixtures, TickFloat)
{
    EXPECT_EQ(lintFixture("tick_float.cpp"),
              (std::vector<Triple>{
                  {"tick_float.cpp", 10, "tick-float"},
                  {"tick_float.cpp", 16, "tick-float"},
              }));
}

TEST(SimlintFixtures, MissingNodiscard)
{
    EXPECT_EQ(lintFixture("missing_nodiscard.h"),
              (std::vector<Triple>{
                  {"missing_nodiscard.h", 10, "missing-nodiscard"},
              }));
}

TEST(SimlintFixtures, BlockCopy)
{
    // Line 13 is the declaration, line 21 the per-request copy; the
    // sanctioned sampleBlockPtr()/sampleBlockIndex() spellings and the
    // justified suppression stay silent.
    EXPECT_EQ(lintFixture("block_copy.cpp"),
              (std::vector<Triple>{
                  {"block_copy.cpp", 13, "block-copy"},
                  {"block_copy.cpp", 21, "block-copy"},
              }));
}

TEST(SimlintFixtures, ZipfApprox)
{
    // Line 8 is the declaration, line 15 the legacy draw; the exact
    // Rng::zipf() spelling and the justified suppression stay silent.
    EXPECT_EQ(lintFixture("zipf_approx.cpp"),
              (std::vector<Triple>{
                  {"zipf_approx.cpp", 8, "zipf-approx"},
                  {"zipf_approx.cpp", 15, "zipf-approx"},
              }));
}

TEST(SimlintFixtures, Suppressions)
{
    // Line 10: justified suppression silences the finding entirely.
    // Line 16: suppression without justification is itself a finding,
    //          but the named (known) rule is still honoured.
    // Line 22: unknown rule suppresses nothing, and is a finding.
    EXPECT_EQ(lintFixture("suppression.cpp"),
              (std::vector<Triple>{
                  {"suppression.cpp", 16, "bad-suppression"},
                  {"suppression.cpp", 22, "bad-suppression"},
                  {"suppression.cpp", 22, "raw-io"},
              }));
}

TEST(SimlintFixtures, CrossFileUnorderedIndex)
{
    // A container declared in one file and iterated in another is still
    // caught: the unordered-decl index spans the whole source set.
    const Source header{"registry.h",
                        "#pragma once\n"
                        "#include <unordered_map>\n"
                        "struct Registry\n"
                        "{\n"
                        "    std::unordered_map<int, int> entries;\n"
                        "};\n"};
    const Source user{"user.cpp",
                      "#include \"registry.h\"\n"
                      "int sum(const Registry &r)\n"
                      "{\n"
                      "    int s = 0;\n"
                      "    for (const auto &kv : r.entries)\n"
                      "        s += kv.second;\n"
                      "    return s;\n"
                      "}\n"};
    EXPECT_EQ(triples(simlint::lint({header, user}, Config{})),
              (std::vector<Triple>{
                  {"user.cpp", 5, "unordered-iter"},
              }));
}

TEST(SimlintConfig, SeverityAllowAndExclude)
{
    Config config;
    std::string error;
    const std::string toml = "# comment\n"
                             "[lint]\n"
                             "exclude = [\"vendored\"]\n"
                             "\n"
                             "[rules.raw-io]\n"
                             "severity = \"off\"\n"
                             "\n"
                             "[rules.wall-clock]\n"
                             "severity = \"warn\"\n"
                             "allow = [\"bench\"]\n";
    ASSERT_TRUE(parseRulesConfig(toml, config, error)) << error;
    EXPECT_EQ(config.severityFor("raw-io"), Severity::Off);
    EXPECT_EQ(config.severityFor("wall-clock"), Severity::Warn);
    EXPECT_EQ(config.severityFor("naked-new"), Severity::Error);
    EXPECT_TRUE(config.allowsPath("wall-clock", "bench/micro.cpp"));
    EXPECT_FALSE(config.allowsPath("wall-clock", "src/micro.cpp"));
    EXPECT_EQ(config.exclude, std::vector<std::string>{"vendored"});

    // severity = "off" drops findings; allow prefixes drop per path.
    const Source noisy{"bench/noisy.cpp",
                       "#include <chrono>\n"
                       "#include <cstdio>\n"
                       "void f()\n"
                       "{\n"
                       "    auto t = std::chrono::steady_clock::now();\n"
                       "    (void)t;\n"
                       "    printf(\"x\");\n"
                       "}\n"};
    const auto found = triples(simlint::lint({noisy}, config));
    EXPECT_TRUE(found.empty()) << simlint::renderText(
        simlint::lint({noisy}, config));
}

TEST(SimlintConfig, RejectsMalformedToml)
{
    Config config;
    std::string error;
    EXPECT_FALSE(parseRulesConfig("[rules.raw-io]\nseverity = \"loud\"\n",
                                  config, error));
    EXPECT_FALSE(error.empty());
}

TEST(SimlintReporters, JsonAndTextNameEveryFinding)
{
    const auto findings =
        simlint::lint({loadFixture("naked_new.cpp")}, Config{});
    ASSERT_EQ(findings.size(), 1u);
    const std::string json = simlint::renderJson(findings);
    EXPECT_NE(json.find("\"rule\":\"naked-new\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"line\":14"), std::string::npos) << json;
    const std::string text = simlint::renderText(findings);
    EXPECT_NE(text.find("naked_new.cpp:14:"), std::string::npos) << text;
}

} // namespace
