# Runs fig07 --smoke --dsan twice under deliberately different process
# layouts (malloc perturbation plus environment-block padding, which
# shifts the heap and the initial stack and with them every pointer value
# the run ever hashes) and requires byte-identical CSVs and tables. Any
# hash-order or address dependence in the simulation shows up as a diff
# here long before it corrupts a full figure sweep.
#
# --dsan adds the determinism sanitizer: every run folds its dispatched
# event stream (tick, seq, stage tag) into a rolling state hash, the
# binary reruns each config serially and fatals on the first diverging
# event window, and the per-run hashes land in
# results/fig07_throughput_latency_statehash.csv — compared across the
# two layouts below, so even a divergence that cancels out in the
# throughput tables fails the test.
#
# Invoked by ctest as:
#   cmake -DFIG07=<binary> -DWORKDIR=<scratch> [-DSHARDS=N]
#       -P fig07_determinism.cmake
#
# With SHARDS set, both runs execute on the parallel PDES kernel
# (`--shards N`, auto timing-domain partition). The dsan pass inside the
# binary then reruns every config on one shard, so a pass proves the
# sharded sweep reproduced the serial event stream exactly — on top of
# the cross-layout stability this test always checked.

if(NOT DEFINED SHARDS)
    set(SHARDS 0)
endif()
set(flags --smoke --dsan)
if(SHARDS GREATER 0)
    list(APPEND flags --shards ${SHARDS})
endif()

foreach(side A B)
    file(REMOVE_RECURSE ${WORKDIR}/${side})
    file(MAKE_DIRECTORY ${WORKDIR}/${side}/results)
endforeach()

string(REPEAT "x" 4096 padding)

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env MALLOC_PERTURB_=1 SMARTDS_ENV_PAD=a
        ${FIG07} ${flags}
    WORKING_DIRECTORY ${WORKDIR}/A
    OUTPUT_FILE ${WORKDIR}/A/stdout.txt
    RESULT_VARIABLE rc_a)
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env MALLOC_PERTURB_=254
        SMARTDS_ENV_PAD=${padding} ${FIG07} ${flags}
    WORKING_DIRECTORY ${WORKDIR}/B
    OUTPUT_FILE ${WORKDIR}/B/stdout.txt
    RESULT_VARIABLE rc_b)
if(NOT rc_a EQUAL 0 OR NOT rc_b EQUAL 0)
    message(FATAL_ERROR "fig07 --smoke failed (A=${rc_a} B=${rc_b})")
endif()

foreach(csv results/fig07_throughput.csv results/fig07_latency.csv
        results/fig07_throughput_latency_statehash.csv)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/A/${csv} ${WORKDIR}/B/${csv}
        RESULT_VARIABLE differs)
    if(NOT differs EQUAL 0)
        message(FATAL_ERROR
            "${csv} differs across process layouts: the sweep leaked "
            "hash order or address values into its results")
    endif()
endforeach()

# Stdout must match too, except the [bench_perf] telemetry line, which
# legitimately carries wall-clock timings.
foreach(side A B)
    file(READ ${WORKDIR}/${side}/stdout.txt out_${side})
    string(REGEX REPLACE "[^\n]*bench_perf[^\n]*\n?" "" out_${side}
           "${out_${side}}")
endforeach()
if(NOT out_A STREQUAL out_B)
    message(FATAL_ERROR
        "fig07 --smoke stdout differs across process layouts")
endif()
