/**
 * @file
 * Middle-tier hot-block read cache tests: LRU/capacity bookkeeping at the
 * unit level, and end-to-end coherence on the CpuOnly read path — cache
 * hits must serve bytes byte-identical to a cache-off run, writes must
 * invalidate the cached copy before it can go stale, and fault-injected
 * runs (bit flips, crash churn, EC degraded reads) must stay correct and
 * deterministic with the cache enabled.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "common/checksum.h"
#include "corpus/block_cache.h"
#include "corpus/corpus.h"
#include "faults/fault_injector.h"
#include "lz4/lz4.h"
#include "mem/memory_system.h"
#include "middletier/cpu_only_server.h"
#include "middletier/hot_block_cache.h"
#include "middletier/protocol.h"
#include "net/fabric.h"
#include "sim/simulator.h"
#include "storage/storage_server.h"
#include "workload/experiment.h"

namespace smartds::middletier {
namespace {

using namespace smartds::time_literals;

constexpr Bytes blockBytes = 4096;

HotBlockCache::Entry
entryOf(Bytes size)
{
    return {size, 0.5,
            std::make_shared<const std::vector<std::uint8_t>>(size, 0xab)};
}

// ---------------------------------------------------------------------
// Unit behaviour
// ---------------------------------------------------------------------

TEST(HotBlockCache, LruEvictsTheColdestBlock)
{
    HotBlockCache cache(3 * blockBytes);
    cache.insert(1, 0 * blockBytes, entryOf(blockBytes));
    cache.insert(1, 1 * blockBytes, entryOf(blockBytes));
    cache.insert(1, 2 * blockBytes, entryOf(blockBytes));
    ASSERT_EQ(cache.entries(), 3u);
    ASSERT_EQ(cache.used(), 3 * blockBytes);

    // Touch block 0: block 1 becomes the LRU tail.
    ASSERT_NE(cache.lookup(1, 0), nullptr);
    cache.insert(1, 3 * blockBytes, entryOf(blockBytes));

    EXPECT_EQ(cache.lookup(1, 1 * blockBytes), nullptr); // evicted
    EXPECT_NE(cache.lookup(1, 0 * blockBytes), nullptr);
    EXPECT_NE(cache.lookup(1, 2 * blockBytes), nullptr);
    EXPECT_NE(cache.lookup(1, 3 * blockBytes), nullptr);

    const HotBlockCache::Stats &s = cache.stats();
    EXPECT_EQ(s.insertions, 4u);
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.hits, 4u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hitBytes, 4 * blockBytes);
    EXPECT_EQ(cache.used(), 3 * blockBytes);
}

TEST(HotBlockCache, CapacityAccountingSkipsUnfittableBlocks)
{
    HotBlockCache cache(2 * blockBytes);

    // Zero-sized and larger-than-cache entries are skipped outright.
    cache.insert(1, 0, entryOf(0));
    cache.insert(1, 0, entryOf(4 * blockBytes));
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.stats().insertions, 0u);

    // Re-inserting the same key refreshes in place, no double charge.
    cache.insert(1, 0, entryOf(blockBytes));
    cache.insert(1, 0, entryOf(blockBytes));
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.used(), blockBytes);

    // A full-capacity block evicts everything else to fit exactly.
    cache.insert(1, blockBytes, entryOf(2 * blockBytes));
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.used(), 2 * blockBytes);
    EXPECT_EQ(cache.lookup(1, 0), nullptr);
}

TEST(HotBlockCache, InvalidateDropsExactlyTheTargetBlock)
{
    HotBlockCache cache(4 * blockBytes);
    cache.insert(7, 0, entryOf(blockBytes));
    cache.insert(7, blockBytes, entryOf(blockBytes));

    EXPECT_TRUE(cache.invalidate(7, 0));
    EXPECT_FALSE(cache.invalidate(7, 0)); // already gone
    EXPECT_FALSE(cache.invalidate(8, blockBytes)); // different VM
    EXPECT_EQ(cache.lookup(7, 0), nullptr);
    EXPECT_NE(cache.lookup(7, blockBytes), nullptr);
    EXPECT_EQ(cache.used(), blockBytes);
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(HotBlockCache, StatsAggregateAcrossCards)
{
    HotBlockCache::Stats a, b;
    a.hits = 3;
    a.hitBytes = 3 * blockBytes;
    a.invalidations = 1;
    b.hits = 2;
    b.misses = 5;
    b.insertions = 4;
    b.evictions = 2;
    a += b;
    EXPECT_EQ(a.hits, 5u);
    EXPECT_EQ(a.misses, 5u);
    EXPECT_EQ(a.hitBytes, 3 * blockBytes);
    EXPECT_EQ(a.insertions, 4u);
    EXPECT_EQ(a.evictions, 2u);
    EXPECT_EQ(a.invalidations, 1u);
}

// ---------------------------------------------------------------------
// End-to-end coherence on the CpuOnly read path
// ---------------------------------------------------------------------

/** Functional storage pool + raw VM port for crafted request streams. */
struct CacheTestbed
{
    sim::Simulator sim;
    net::Fabric fabric{sim};
    mem::MemorySystem memory{sim, "mem", {}};
    std::vector<std::unique_ptr<storage::StorageServer>> storage;
    std::vector<net::NodeId> storageNodes;
    faults::FaultInjector injector{sim};
    corpus::SyntheticCorpus corpus{1u << 20, 42};
    net::Port *vm = nullptr;
    std::vector<std::vector<std::uint8_t>> readBytes;

    CacheTestbed()
    {
        storage::StorageServer::Config sc;
        sc.functionalStore = true;
        for (unsigned i = 0; i < 3; ++i) {
            storage.push_back(std::make_unique<storage::StorageServer>(
                fabric, "st" + std::to_string(i), sc));
            storageNodes.push_back(storage.back()->nodeId());
            storage.back()->attachFaults(
                injector.profile(storageNodes.back()));
        }
        vm = fabric.createPort("vm-raw");
        vm->onReceive([this](net::Message msg) {
            if (msg.kind != net::MessageKind::ReadReply)
                return;
            ASSERT_TRUE(msg.payload.data);
            readBytes.push_back(*msg.payload.data);
        });
    }

    ServerConfig
    serverConfig(Bytes cache_bytes) const
    {
        ServerConfig config;
        config.cores = 4;
        config.storageNodes = storageNodes;
        config.readCache.capacityBytes = cache_bytes;
        return config;
    }

    /** Seed every replica of @p tag directly on the storage nodes. */
    void
    seedReplicas(std::uint64_t tag, std::uint64_t vm_id,
                 std::uint64_t block_offset,
                 const std::vector<std::uint8_t> &plain,
                 unsigned corrupt_replicas = 0)
    {
        const auto good = std::make_shared<const std::vector<std::uint8_t>>(
            lz4::compress(plain, 1));
        std::vector<std::uint8_t> flipped_plain = plain;
        flipped_plain[0] ^= 0xff;
        const auto bad = std::make_shared<const std::vector<std::uint8_t>>(
            lz4::compress(flipped_plain, 1));

        StorageHeader hdr;
        hdr.vmId = vm_id;
        hdr.blockOffset = block_offset;
        hdr.tag = tag;
        hdr.payloadSize = static_cast<std::uint32_t>(plain.size());
        hdr.blockChecksum = xxhash32(plain);
        const auto header = hdr.encodeShared();

        for (unsigned i = 0; i < storage.size(); ++i) {
            net::Message w;
            w.dst = storageNodes[i];
            w.kind = net::MessageKind::WriteReplica;
            w.headerBytes = StorageHeader::wireSize;
            w.headerData = header;
            w.tag = tag;
            w.payload.data = i < corrupt_replicas ? bad : good;
            w.payload.size = w.payload.data->size();
            w.payload.compressed = true;
            w.payload.originalSize = plain.size();
            vm->send(std::move(w));
        }
        sim.run();
    }

    /** One crafted read, run to completion. */
    void
    read(net::NodeId front, std::uint64_t tag, std::uint64_t vm_id,
         std::uint64_t block_offset)
    {
        net::Message r;
        r.dst = front;
        r.kind = net::MessageKind::ReadRequest;
        r.headerBytes = StorageHeader::wireSize;
        r.tag = tag;
        r.vmId = vm_id;
        r.blockOffset = block_offset;
        r.payload.size = 0;
        r.payload.originalSize = blockBytes;
        vm->send(std::move(r));
        sim.run();
    }

    /** One crafted functional write, mimicking the VmClient encoding. */
    void
    write(net::NodeId front, std::uint64_t tag, std::uint64_t vm_id,
          std::uint64_t block_offset,
          const std::vector<std::uint8_t> &plain)
    {
        StorageHeader hdr;
        hdr.vmId = vm_id;
        hdr.blockOffset = block_offset;
        hdr.tag = tag;
        hdr.payloadSize = static_cast<std::uint32_t>(plain.size());
        hdr.blockChecksum = xxhash32(plain);

        net::Message w;
        w.dst = front;
        w.kind = net::MessageKind::WriteRequest;
        w.headerBytes = StorageHeader::wireSize;
        w.headerData = hdr.encodeShared();
        w.tag = tag;
        w.vmId = vm_id;
        w.blockOffset = block_offset;
        w.payload.size = plain.size();
        w.payload.data =
            std::make_shared<const std::vector<std::uint8_t>>(plain);
        w.payload.compressibility =
            lz4::compressionRatio(plain.data(), plain.size(), 1);
        vm->send(std::move(w));
        sim.run();
    }
};

TEST(HotBlockCacheEndToEnd, RepeatedReadsHitAndServeIdenticalBytes)
{
    CacheTestbed bed;
    CpuOnlyServer server(bed.fabric, bed.memory,
                         bed.serverConfig(mebibytes(1)));

    Rng rng(3);
    const std::vector<std::uint8_t> plain =
        bed.corpus.sampleBlock(blockBytes, rng);
    bed.seedReplicas(777, /*vm=*/5, /*offset=*/blockBytes, plain);

    constexpr unsigned reads = 10;
    for (unsigned i = 0; i < reads; ++i)
        bed.read(server.frontNode(), 777, 5, blockBytes);

    ASSERT_EQ(bed.readBytes.size(), reads);
    for (const auto &bytes : bed.readBytes)
        EXPECT_EQ(bytes, plain); // hits and the miss serve the same bytes

    const HotBlockCache::Stats s = server.readCacheStats();
    EXPECT_EQ(s.insertions, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, reads - 1u);
    EXPECT_EQ(s.hitBytes, (reads - 1u) * blockBytes);
}

TEST(HotBlockCacheEndToEnd, WriteInvalidatesTheCachedCopy)
{
    CacheTestbed bed;
    CpuOnlyServer server(bed.fabric, bed.memory,
                         bed.serverConfig(mebibytes(1)));

    Rng rng(3);
    const std::vector<std::uint8_t> old_plain =
        bed.corpus.sampleBlock(blockBytes, rng);
    std::vector<std::uint8_t> new_plain =
        bed.corpus.sampleBlock(blockBytes, rng);
    if (new_plain == old_plain)
        new_plain[0] ^= 0xff;

    // Cache the old version of (vm 5, offset 0) via two reads.
    bed.seedReplicas(1, 5, 0, old_plain);
    bed.read(server.frontNode(), 1, 5, 0);
    bed.read(server.frontNode(), 1, 5, 0);
    ASSERT_EQ(server.readCacheStats().hits, 1u);

    // Overwrite the block through the server's write path: the stale
    // cached copy must be dropped before the write acknowledges.
    bed.write(server.frontNode(), 2, 5, 0, new_plain);
    EXPECT_EQ(server.readCacheStats().invalidations, 1u);

    // A read of the new version must miss and serve the fresh bytes —
    // with a missing invalidation it would hit and serve old_plain.
    bed.read(server.frontNode(), 2, 5, 0);
    ASSERT_EQ(bed.readBytes.size(), 3u);
    EXPECT_EQ(bed.readBytes[0], old_plain);
    EXPECT_EQ(bed.readBytes[1], old_plain);
    EXPECT_EQ(bed.readBytes[2], new_plain);
}

TEST(HotBlockCacheEndToEnd, BitFlippedReplicasNeverReachTheCache)
{
    // Two of three replicas are bit-flipped. With the cache on, every
    // read must still serve the clean bytes (byte-identical to the
    // cache-off run below), because only checksum-verified plaintext is
    // ever inserted.
    Rng rng(3);
    for (const Bytes capacity : {Bytes(0), mebibytes(1)}) {
        CacheTestbed bed;
        CpuOnlyServer server(bed.fabric, bed.memory,
                             bed.serverConfig(capacity));
        const std::vector<std::uint8_t> plain =
            bed.corpus.sampleBlock(blockBytes, rng);
        bed.seedReplicas(777, 9, 0, plain, /*corrupt_replicas=*/2);

        constexpr unsigned reads = 20;
        for (unsigned i = 0; i < reads; ++i)
            bed.read(server.frontNode(), 777, 9, 0);

        ASSERT_EQ(bed.readBytes.size(), reads);
        for (const auto &bytes : bed.readBytes)
            EXPECT_EQ(bytes, plain);
        EXPECT_EQ(server.failoverStats().readsUnserved, 0u);

        const HotBlockCache::Stats s = server.readCacheStats();
        if (capacity == 0) {
            EXPECT_EQ(s.hits + s.misses, 0u); // cache disabled
            // Every read rolls the replica dice: corruption keeps being
            // detected for the whole run.
            EXPECT_GT(server.failoverStats().corruptionsDetected, 1u);
        } else {
            // After the first verified read the block is pinned hot: the
            // corrupt replicas are never consulted again.
            EXPECT_EQ(s.hits, reads - 1u);
        }
    }
}

TEST(HotBlockCacheEndToEnd, CrashedReplicaFailsOverAndHitsStayClean)
{
    // One replica host is down from t=0: the first read times out on it
    // (when probed), fails over and caches the verified bytes; every
    // later read hits locally and never touches the dead node — the
    // crash-churn flavour of the byte-identity guarantee.
    CacheTestbed bed;
    CpuOnlyServer server(bed.fabric, bed.memory,
                         bed.serverConfig(mebibytes(1)));

    Rng rng(3);
    const std::vector<std::uint8_t> plain =
        bed.corpus.sampleBlock(blockBytes, rng);
    bed.seedReplicas(777, 6, 0, plain);
    bed.injector.profile(bed.storageNodes[0])->crash();

    constexpr unsigned reads = 10;
    for (unsigned i = 0; i < reads; ++i)
        bed.read(server.frontNode(), 777, 6, 0);

    ASSERT_EQ(bed.readBytes.size(), reads);
    for (const auto &bytes : bed.readBytes)
        EXPECT_EQ(bytes, plain);
    EXPECT_EQ(server.failoverStats().readsUnserved, 0u);
    EXPECT_EQ(server.readCacheStats().hits, reads - 1u);
}

TEST(HotBlockCacheEndToEnd, EcDegradedReadIsCachedByteForByte)
{
    // RS(4, 2), one failure domain (= m shards) dark: the first read
    // decodes the stripe from parity, the recovered plaintext lands in
    // the hot-block cache, and every later read serves it byte for byte
    // without another degraded decode.
    sim::Simulator sim;
    net::Fabric fabric(sim);
    mem::MemorySystem memory(sim, "mem", {});
    faults::FaultInjector injector(sim);

    storage::StorageServer::Config sc;
    sc.functionalStore = true;
    std::vector<std::unique_ptr<storage::StorageServer>> storage;
    std::vector<net::NodeId> storage_nodes;
    for (unsigned i = 0; i < 6; ++i) {
        storage.push_back(std::make_unique<storage::StorageServer>(
            fabric, "st" + std::to_string(i), sc));
        storage_nodes.push_back(storage.back()->nodeId());
        storage.back()->attachFaults(
            injector.profile(storage_nodes.back()));
    }

    corpus::SyntheticCorpus corpus(1u << 20, 42);
    const corpus::BlockCodecCache &codec =
        corpus::sharedBlockCache(corpus, blockBytes, 1);
    const corpus::BlockCodecCache::Entry &entry = codec.entry(3);

    ServerConfig config;
    config.cores = 4;
    config.storageNodes = storage_nodes;
    config.policy = ReplicationPolicy::ErasureCode;
    config.ec.dataShards = 4;
    config.ec.parityShards = 2;
    for (unsigned i = 0; i < storage_nodes.size(); ++i)
        config.storageDomains.push_back(i % 3);
    config.blockCache = &codec;
    config.readCache.capacityBytes = mebibytes(1);
    CpuOnlyServer server(fabric, memory, config);

    net::Port *vm = fabric.createPort("vm-raw");
    unsigned write_acks = 0;
    std::vector<std::vector<std::uint8_t>> read_bytes;
    vm->onReceive([&](net::Message msg) {
        if (msg.kind == net::MessageKind::WriteReply) {
            ++write_acks;
            return;
        }
        if (msg.kind != net::MessageKind::ReadReply)
            return;
        ASSERT_TRUE(msg.payload.data);
        read_bytes.push_back(*msg.payload.data);
    });

    StorageHeader hdr;
    hdr.tag = 42;
    hdr.payloadSize = blockBytes;
    hdr.blockChecksum = entry.plainChecksum;
    hdr.compressionEffort = 1;
    net::Message w;
    w.dst = server.frontNode();
    w.kind = net::MessageKind::WriteRequest;
    w.headerBytes = StorageHeader::wireSize;
    w.headerData = hdr.encodeShared();
    w.tag = 42;
    w.payload.data = entry.plain;
    w.payload.size = blockBytes;
    w.payload.blockId = 4; // blockId is 1-based
    w.payload.compressibility = entry.ratio;
    vm->send(std::move(w));
    sim.run();
    ASSERT_EQ(write_acks, 1u);

    // A rack loses power: domain 0 = nodes 0 and 3 = exactly m shards.
    for (unsigned i = 0; i < storage_nodes.size(); ++i)
        if (i % 3 == 0)
            injector.profile(storage_nodes[i])->crash();

    constexpr unsigned reads = 5;
    for (unsigned i = 0; i < reads; ++i) {
        net::Message r;
        r.dst = server.frontNode();
        r.kind = net::MessageKind::ReadRequest;
        r.headerBytes = StorageHeader::wireSize;
        r.tag = 42;
        r.payload.size = entry.compressed->size();
        r.payload.originalSize = blockBytes;
        vm->send(std::move(r));
        sim.run();
    }

    ASSERT_EQ(read_bytes.size(), reads);
    for (const auto &bytes : read_bytes)
        EXPECT_EQ(bytes, *entry.plain); // byte for byte, hit or decode

    const FailoverStats stats = server.failoverStats();
    EXPECT_GT(stats.degradedReads, 0u);
    EXPECT_EQ(stats.readsUnserved, 0u);
    const HotBlockCache::Stats cache_stats = server.readCacheStats();
    EXPECT_EQ(cache_stats.hits, reads - 1u);
    // Only the first read paid the degraded decode.
    EXPECT_EQ(stats.degradedReads, 1u);
}

// ---------------------------------------------------------------------
// Experiment-level: faults + cache stay correct and deterministic
// ---------------------------------------------------------------------

auto
resultKey(const workload::ExperimentResult &r)
{
    return std::make_tuple(
        r.requestsCompleted, r.throughputGbps, r.p99LatencyUs,
        r.failover.replicaTimeouts, r.failover.corruptionsDetected,
        r.failover.readFailovers, r.failover.readsUnserved,
        r.failover.degradedReads, r.blocksCorrupted, r.crashesInjected,
        r.cache.hits, r.cache.misses, r.cache.hitBytes, r.cache.insertions,
        r.cache.evictions, r.cache.invalidations);
}

TEST(HotBlockCacheEndToEnd, FaultyCachedRunsAreDeterministic)
{
    // Skewed workload with bit flips and crash churn, cache on: the run
    // must be bit-deterministic (cache counters included) and the cache
    // must actually be exercised, hits and write invalidations both.
    workload::ExperimentConfig config;
    config.design = Design::CpuOnly;
    config.cores = 4;
    config.clients = 4;
    config.storageServers = 6;
    config.readFraction = 0.6;
    config.zipfTheta = 0.99;
    config.virtualDiskBytes = mebibytes(8);
    config.readCacheBytes = kibibytes(256);
    config.corruptProbability = 0.05;
    config.crashMeanInterval = 800_us;
    config.crashOutage = 1 * ticksPerMillisecond;
    config.warmup = 1 * ticksPerMillisecond;
    config.window = 3 * ticksPerMillisecond;

    const auto a = workload::runWriteExperiment(config);
    const auto b = workload::runWriteExperiment(config);

    EXPECT_GT(a.requestsCompleted, 100u);
    EXPECT_GT(a.crashesInjected, 0u);
    EXPECT_GT(a.blocksCorrupted, 0u);
    EXPECT_GT(a.cache.hits, 0u);
    EXPECT_GT(a.cache.invalidations, 0u); // writes hit cached blocks
    EXPECT_EQ(resultKey(a), resultKey(b));
}

TEST(HotBlockCacheEndToEnd, EcDegradedReadsFillTheCache)
{
    // RS(4, 2) with a mid-run domain crash: reads decode degraded
    // stripes, the recovered blocks are cached, and the run stays
    // deterministic with the cache enabled.
    workload::ExperimentConfig config;
    config.design = Design::CpuOnly;
    config.cores = 4;
    config.clients = 3;
    config.storageServers = 6;
    config.failureDomains = 3;
    config.replicationPolicy = ReplicationPolicy::ErasureCode;
    config.ecDataShards = 4;
    config.ecParityShards = 2;
    config.readFraction = 0.5;
    config.zipfTheta = 0.99;
    config.virtualDiskBytes = mebibytes(8);
    config.readCacheBytes = kibibytes(256);
    config.warmup = 1 * ticksPerMillisecond;
    config.window = 3 * ticksPerMillisecond;
    config.domainCrashAt = 1500_us;
    config.domainCrashOutage = 1 * ticksPerMillisecond;
    config.ackQuorum = 4;

    const auto a = workload::runWriteExperiment(config);
    const auto b = workload::runWriteExperiment(config);

    EXPECT_GT(a.requestsCompleted, 50u);
    EXPECT_GT(a.failover.stripesEncoded, 0u);
    EXPECT_GT(a.cache.hits, 0u);
    EXPECT_EQ(a.crashesInjected, 2u);
    EXPECT_EQ(resultKey(a), resultKey(b));
}

TEST(HotBlockCacheEndToEnd, SmartDsHbmCacheServesSkewedReads)
{
    // SmartDS with the cache placed in device HBM: hits are charged to
    // the HBM flow instead of host cores and the functional run remains
    // deterministic.
    workload::ExperimentConfig config;
    config.design = Design::SmartDs;
    config.workersPerPort = 16;
    config.clients = 4;
    config.storageServers = 6;
    config.readFraction = 0.6;
    config.zipfTheta = 0.99;
    config.virtualDiskBytes = mebibytes(8);
    config.readCacheBytes = mebibytes(1);
    config.readCachePlacement = ReadCachePlacement::DeviceHbm;
    config.warmup = 1 * ticksPerMillisecond;
    config.window = 3 * ticksPerMillisecond;

    const auto a = workload::runWriteExperiment(config);
    const auto b = workload::runWriteExperiment(config);

    EXPECT_GT(a.requestsCompleted, 100u);
    EXPECT_GT(a.cache.hits, 0u);
    EXPECT_EQ(resultKey(a), resultKey(b));
}

} // namespace
} // namespace smartds::middletier
