# Empty dependencies file for test_chunk_manager.
# This may be replaced when dependencies are built.
