file(REMOVE_RECURSE
  "CMakeFiles/test_chunk_manager.dir/test_chunk_manager.cpp.o"
  "CMakeFiles/test_chunk_manager.dir/test_chunk_manager.cpp.o.d"
  "test_chunk_manager"
  "test_chunk_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunk_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
