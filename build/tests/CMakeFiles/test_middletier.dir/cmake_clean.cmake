file(REMOVE_RECURSE
  "CMakeFiles/test_middletier.dir/test_middletier.cpp.o"
  "CMakeFiles/test_middletier.dir/test_middletier.cpp.o.d"
  "test_middletier"
  "test_middletier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_middletier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
