# Empty compiler generated dependencies file for test_middletier.
# This may be replaced when dependencies are built.
