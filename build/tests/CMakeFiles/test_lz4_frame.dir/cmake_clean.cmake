file(REMOVE_RECURSE
  "CMakeFiles/test_lz4_frame.dir/test_lz4_frame.cpp.o"
  "CMakeFiles/test_lz4_frame.dir/test_lz4_frame.cpp.o.d"
  "test_lz4_frame"
  "test_lz4_frame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lz4_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
