# Empty dependencies file for test_lz4_frame.
# This may be replaced when dependencies are built.
