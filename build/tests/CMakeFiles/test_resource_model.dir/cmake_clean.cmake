file(REMOVE_RECURSE
  "CMakeFiles/test_resource_model.dir/test_resource_model.cpp.o"
  "CMakeFiles/test_resource_model.dir/test_resource_model.cpp.o.d"
  "test_resource_model"
  "test_resource_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resource_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
