# Empty dependencies file for test_resource_model.
# This may be replaced when dependencies are built.
