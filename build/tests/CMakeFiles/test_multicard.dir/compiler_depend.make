# Empty compiler generated dependencies file for test_multicard.
# This may be replaced when dependencies are built.
