file(REMOVE_RECURSE
  "CMakeFiles/test_multicard.dir/test_multicard.cpp.o"
  "CMakeFiles/test_multicard.dir/test_multicard.cpp.o.d"
  "test_multicard"
  "test_multicard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multicard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
