# Empty compiler generated dependencies file for smartds_common.
# This may be replaced when dependencies are built.
