file(REMOVE_RECURSE
  "libsmartds_common.a"
)
