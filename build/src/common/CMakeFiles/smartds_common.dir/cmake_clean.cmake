file(REMOVE_RECURSE
  "CMakeFiles/smartds_common.dir/checksum.cpp.o"
  "CMakeFiles/smartds_common.dir/checksum.cpp.o.d"
  "CMakeFiles/smartds_common.dir/histogram.cpp.o"
  "CMakeFiles/smartds_common.dir/histogram.cpp.o.d"
  "CMakeFiles/smartds_common.dir/logging.cpp.o"
  "CMakeFiles/smartds_common.dir/logging.cpp.o.d"
  "CMakeFiles/smartds_common.dir/table.cpp.o"
  "CMakeFiles/smartds_common.dir/table.cpp.o.d"
  "libsmartds_common.a"
  "libsmartds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
