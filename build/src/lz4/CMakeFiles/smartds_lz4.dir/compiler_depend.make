# Empty compiler generated dependencies file for smartds_lz4.
# This may be replaced when dependencies are built.
