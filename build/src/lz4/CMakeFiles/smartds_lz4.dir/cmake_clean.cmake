file(REMOVE_RECURSE
  "CMakeFiles/smartds_lz4.dir/frame.cpp.o"
  "CMakeFiles/smartds_lz4.dir/frame.cpp.o.d"
  "CMakeFiles/smartds_lz4.dir/lz4.cpp.o"
  "CMakeFiles/smartds_lz4.dir/lz4.cpp.o.d"
  "libsmartds_lz4.a"
  "libsmartds_lz4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_lz4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
