file(REMOVE_RECURSE
  "libsmartds_lz4.a"
)
