file(REMOVE_RECURSE
  "libsmartds_storage.a"
)
