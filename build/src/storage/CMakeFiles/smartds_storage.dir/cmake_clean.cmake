file(REMOVE_RECURSE
  "CMakeFiles/smartds_storage.dir/storage_server.cpp.o"
  "CMakeFiles/smartds_storage.dir/storage_server.cpp.o.d"
  "libsmartds_storage.a"
  "libsmartds_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
