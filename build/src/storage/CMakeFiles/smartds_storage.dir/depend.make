# Empty dependencies file for smartds_storage.
# This may be replaced when dependencies are built.
