
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/rdma_nic.cpp" "src/nic/CMakeFiles/smartds_nic.dir/rdma_nic.cpp.o" "gcc" "src/nic/CMakeFiles/smartds_nic.dir/rdma_nic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smartds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smartds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smartds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/smartds_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smartds_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
