# Empty compiler generated dependencies file for smartds_nic.
# This may be replaced when dependencies are built.
