file(REMOVE_RECURSE
  "CMakeFiles/smartds_nic.dir/rdma_nic.cpp.o"
  "CMakeFiles/smartds_nic.dir/rdma_nic.cpp.o.d"
  "libsmartds_nic.a"
  "libsmartds_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
