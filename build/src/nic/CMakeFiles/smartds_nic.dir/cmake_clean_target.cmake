file(REMOVE_RECURSE
  "libsmartds_nic.a"
)
