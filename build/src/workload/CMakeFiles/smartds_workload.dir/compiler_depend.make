# Empty compiler generated dependencies file for smartds_workload.
# This may be replaced when dependencies are built.
