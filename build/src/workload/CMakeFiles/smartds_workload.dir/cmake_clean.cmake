file(REMOVE_RECURSE
  "CMakeFiles/smartds_workload.dir/experiment.cpp.o"
  "CMakeFiles/smartds_workload.dir/experiment.cpp.o.d"
  "CMakeFiles/smartds_workload.dir/trace.cpp.o"
  "CMakeFiles/smartds_workload.dir/trace.cpp.o.d"
  "CMakeFiles/smartds_workload.dir/vm_client.cpp.o"
  "CMakeFiles/smartds_workload.dir/vm_client.cpp.o.d"
  "libsmartds_workload.a"
  "libsmartds_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
