file(REMOVE_RECURSE
  "libsmartds_workload.a"
)
