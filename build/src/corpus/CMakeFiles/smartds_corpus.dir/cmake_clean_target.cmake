file(REMOVE_RECURSE
  "libsmartds_corpus.a"
)
