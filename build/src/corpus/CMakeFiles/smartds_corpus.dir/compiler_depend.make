# Empty compiler generated dependencies file for smartds_corpus.
# This may be replaced when dependencies are built.
