file(REMOVE_RECURSE
  "CMakeFiles/smartds_corpus.dir/corpus.cpp.o"
  "CMakeFiles/smartds_corpus.dir/corpus.cpp.o.d"
  "libsmartds_corpus.a"
  "libsmartds_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
