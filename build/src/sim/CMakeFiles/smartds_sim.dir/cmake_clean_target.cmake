file(REMOVE_RECURSE
  "libsmartds_sim.a"
)
