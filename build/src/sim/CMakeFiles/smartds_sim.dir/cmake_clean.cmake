file(REMOVE_RECURSE
  "CMakeFiles/smartds_sim.dir/bandwidth_server.cpp.o"
  "CMakeFiles/smartds_sim.dir/bandwidth_server.cpp.o.d"
  "CMakeFiles/smartds_sim.dir/fair_share.cpp.o"
  "CMakeFiles/smartds_sim.dir/fair_share.cpp.o.d"
  "CMakeFiles/smartds_sim.dir/simulator.cpp.o"
  "CMakeFiles/smartds_sim.dir/simulator.cpp.o.d"
  "libsmartds_sim.a"
  "libsmartds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
