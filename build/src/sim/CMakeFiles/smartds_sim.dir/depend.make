# Empty dependencies file for smartds_sim.
# This may be replaced when dependencies are built.
