# Empty compiler generated dependencies file for smartds_device.
# This may be replaced when dependencies are built.
