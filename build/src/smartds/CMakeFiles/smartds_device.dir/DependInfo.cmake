
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smartds/device.cpp" "src/smartds/CMakeFiles/smartds_device.dir/device.cpp.o" "gcc" "src/smartds/CMakeFiles/smartds_device.dir/device.cpp.o.d"
  "/root/repo/src/smartds/device_memory.cpp" "src/smartds/CMakeFiles/smartds_device.dir/device_memory.cpp.o" "gcc" "src/smartds/CMakeFiles/smartds_device.dir/device_memory.cpp.o.d"
  "/root/repo/src/smartds/resource_model.cpp" "src/smartds/CMakeFiles/smartds_device.dir/resource_model.cpp.o" "gcc" "src/smartds/CMakeFiles/smartds_device.dir/resource_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smartds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smartds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smartds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/smartds_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smartds_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/lz4/CMakeFiles/smartds_lz4.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
