file(REMOVE_RECURSE
  "CMakeFiles/smartds_device.dir/device.cpp.o"
  "CMakeFiles/smartds_device.dir/device.cpp.o.d"
  "CMakeFiles/smartds_device.dir/device_memory.cpp.o"
  "CMakeFiles/smartds_device.dir/device_memory.cpp.o.d"
  "CMakeFiles/smartds_device.dir/resource_model.cpp.o"
  "CMakeFiles/smartds_device.dir/resource_model.cpp.o.d"
  "libsmartds_device.a"
  "libsmartds_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
