file(REMOVE_RECURSE
  "libsmartds_device.a"
)
