file(REMOVE_RECURSE
  "CMakeFiles/smartds_net.dir/fabric.cpp.o"
  "CMakeFiles/smartds_net.dir/fabric.cpp.o.d"
  "CMakeFiles/smartds_net.dir/roce.cpp.o"
  "CMakeFiles/smartds_net.dir/roce.cpp.o.d"
  "libsmartds_net.a"
  "libsmartds_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
