# Empty dependencies file for smartds_net.
# This may be replaced when dependencies are built.
