file(REMOVE_RECURSE
  "libsmartds_net.a"
)
