# Empty compiler generated dependencies file for smartds_pcie.
# This may be replaced when dependencies are built.
