file(REMOVE_RECURSE
  "libsmartds_pcie.a"
)
