file(REMOVE_RECURSE
  "CMakeFiles/smartds_pcie.dir/pcie.cpp.o"
  "CMakeFiles/smartds_pcie.dir/pcie.cpp.o.d"
  "libsmartds_pcie.a"
  "libsmartds_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
