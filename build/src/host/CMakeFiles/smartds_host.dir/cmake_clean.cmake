file(REMOVE_RECURSE
  "CMakeFiles/smartds_host.dir/core_pool.cpp.o"
  "CMakeFiles/smartds_host.dir/core_pool.cpp.o.d"
  "libsmartds_host.a"
  "libsmartds_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
