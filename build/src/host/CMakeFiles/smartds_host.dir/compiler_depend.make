# Empty compiler generated dependencies file for smartds_host.
# This may be replaced when dependencies are built.
