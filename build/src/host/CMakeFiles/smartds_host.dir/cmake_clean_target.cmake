file(REMOVE_RECURSE
  "libsmartds_host.a"
)
