# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("lz4")
subdirs("corpus")
subdirs("mem")
subdirs("pcie")
subdirs("net")
subdirs("nic")
subdirs("host")
subdirs("smartds")
subdirs("storage")
subdirs("middletier")
subdirs("workload")
subdirs("cluster")
