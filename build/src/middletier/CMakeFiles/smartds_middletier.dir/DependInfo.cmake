
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/middletier/accelerator_server.cpp" "src/middletier/CMakeFiles/smartds_middletier.dir/accelerator_server.cpp.o" "gcc" "src/middletier/CMakeFiles/smartds_middletier.dir/accelerator_server.cpp.o.d"
  "/root/repo/src/middletier/bf2_server.cpp" "src/middletier/CMakeFiles/smartds_middletier.dir/bf2_server.cpp.o" "gcc" "src/middletier/CMakeFiles/smartds_middletier.dir/bf2_server.cpp.o.d"
  "/root/repo/src/middletier/chunk_manager.cpp" "src/middletier/CMakeFiles/smartds_middletier.dir/chunk_manager.cpp.o" "gcc" "src/middletier/CMakeFiles/smartds_middletier.dir/chunk_manager.cpp.o.d"
  "/root/repo/src/middletier/cpu_only_server.cpp" "src/middletier/CMakeFiles/smartds_middletier.dir/cpu_only_server.cpp.o" "gcc" "src/middletier/CMakeFiles/smartds_middletier.dir/cpu_only_server.cpp.o.d"
  "/root/repo/src/middletier/maintenance.cpp" "src/middletier/CMakeFiles/smartds_middletier.dir/maintenance.cpp.o" "gcc" "src/middletier/CMakeFiles/smartds_middletier.dir/maintenance.cpp.o.d"
  "/root/repo/src/middletier/multi_card_server.cpp" "src/middletier/CMakeFiles/smartds_middletier.dir/multi_card_server.cpp.o" "gcc" "src/middletier/CMakeFiles/smartds_middletier.dir/multi_card_server.cpp.o.d"
  "/root/repo/src/middletier/protocol.cpp" "src/middletier/CMakeFiles/smartds_middletier.dir/protocol.cpp.o" "gcc" "src/middletier/CMakeFiles/smartds_middletier.dir/protocol.cpp.o.d"
  "/root/repo/src/middletier/server_base.cpp" "src/middletier/CMakeFiles/smartds_middletier.dir/server_base.cpp.o" "gcc" "src/middletier/CMakeFiles/smartds_middletier.dir/server_base.cpp.o.d"
  "/root/repo/src/middletier/smartds_server.cpp" "src/middletier/CMakeFiles/smartds_middletier.dir/smartds_server.cpp.o" "gcc" "src/middletier/CMakeFiles/smartds_middletier.dir/smartds_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smartds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smartds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smartds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/smartds_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/smartds_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smartds_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/smartds_host.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/smartds_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/smartds/CMakeFiles/smartds_device.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/smartds_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/lz4/CMakeFiles/smartds_lz4.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
