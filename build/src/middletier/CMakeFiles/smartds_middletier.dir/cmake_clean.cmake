file(REMOVE_RECURSE
  "CMakeFiles/smartds_middletier.dir/accelerator_server.cpp.o"
  "CMakeFiles/smartds_middletier.dir/accelerator_server.cpp.o.d"
  "CMakeFiles/smartds_middletier.dir/bf2_server.cpp.o"
  "CMakeFiles/smartds_middletier.dir/bf2_server.cpp.o.d"
  "CMakeFiles/smartds_middletier.dir/chunk_manager.cpp.o"
  "CMakeFiles/smartds_middletier.dir/chunk_manager.cpp.o.d"
  "CMakeFiles/smartds_middletier.dir/cpu_only_server.cpp.o"
  "CMakeFiles/smartds_middletier.dir/cpu_only_server.cpp.o.d"
  "CMakeFiles/smartds_middletier.dir/maintenance.cpp.o"
  "CMakeFiles/smartds_middletier.dir/maintenance.cpp.o.d"
  "CMakeFiles/smartds_middletier.dir/multi_card_server.cpp.o"
  "CMakeFiles/smartds_middletier.dir/multi_card_server.cpp.o.d"
  "CMakeFiles/smartds_middletier.dir/protocol.cpp.o"
  "CMakeFiles/smartds_middletier.dir/protocol.cpp.o.d"
  "CMakeFiles/smartds_middletier.dir/server_base.cpp.o"
  "CMakeFiles/smartds_middletier.dir/server_base.cpp.o.d"
  "CMakeFiles/smartds_middletier.dir/smartds_server.cpp.o"
  "CMakeFiles/smartds_middletier.dir/smartds_server.cpp.o.d"
  "libsmartds_middletier.a"
  "libsmartds_middletier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_middletier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
