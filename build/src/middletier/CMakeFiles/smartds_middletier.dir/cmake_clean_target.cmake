file(REMOVE_RECURSE
  "libsmartds_middletier.a"
)
