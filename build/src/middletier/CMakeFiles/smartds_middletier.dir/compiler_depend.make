# Empty compiler generated dependencies file for smartds_middletier.
# This may be replaced when dependencies are built.
