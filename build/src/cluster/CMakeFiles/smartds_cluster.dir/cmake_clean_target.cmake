file(REMOVE_RECURSE
  "libsmartds_cluster.a"
)
