file(REMOVE_RECURSE
  "CMakeFiles/smartds_cluster.dir/scale_up.cpp.o"
  "CMakeFiles/smartds_cluster.dir/scale_up.cpp.o.d"
  "libsmartds_cluster.a"
  "libsmartds_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
