# Empty dependencies file for smartds_cluster.
# This may be replaced when dependencies are built.
