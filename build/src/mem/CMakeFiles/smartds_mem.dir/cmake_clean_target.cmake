file(REMOVE_RECURSE
  "libsmartds_mem.a"
)
