# Empty dependencies file for smartds_mem.
# This may be replaced when dependencies are built.
