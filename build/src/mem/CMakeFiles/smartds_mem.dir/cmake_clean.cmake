file(REMOVE_RECURSE
  "CMakeFiles/smartds_mem.dir/memory_system.cpp.o"
  "CMakeFiles/smartds_mem.dir/memory_system.cpp.o.d"
  "CMakeFiles/smartds_mem.dir/mlc_injector.cpp.o"
  "CMakeFiles/smartds_mem.dir/mlc_injector.cpp.o.d"
  "libsmartds_mem.a"
  "libsmartds_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartds_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
