file(REMOVE_RECURSE
  "CMakeFiles/write_path.dir/write_path.cpp.o"
  "CMakeFiles/write_path.dir/write_path.cpp.o.d"
  "write_path"
  "write_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
