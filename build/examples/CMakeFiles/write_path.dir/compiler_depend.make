# Empty compiler generated dependencies file for write_path.
# This may be replaced when dependencies are built.
