file(REMOVE_RECURSE
  "CMakeFiles/multiport_scaling.dir/multiport_scaling.cpp.o"
  "CMakeFiles/multiport_scaling.dir/multiport_scaling.cpp.o.d"
  "multiport_scaling"
  "multiport_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiport_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
