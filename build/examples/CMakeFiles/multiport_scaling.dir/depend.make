# Empty dependencies file for multiport_scaling.
# This may be replaced when dependencies are built.
