
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/read_path.cpp" "examples/CMakeFiles/read_path.dir/read_path.cpp.o" "gcc" "examples/CMakeFiles/read_path.dir/read_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smartds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smartds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lz4/CMakeFiles/smartds_lz4.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/smartds_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smartds_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/smartds_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/smartds_net.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/smartds_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/smartds_host.dir/DependInfo.cmake"
  "/root/repo/build/src/smartds/CMakeFiles/smartds_device.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/smartds_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/middletier/CMakeFiles/smartds_middletier.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smartds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/smartds_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
