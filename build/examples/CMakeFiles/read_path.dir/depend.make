# Empty dependencies file for read_path.
# This may be replaced when dependencies are built.
