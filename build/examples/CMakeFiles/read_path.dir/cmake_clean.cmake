file(REMOVE_RECURSE
  "CMakeFiles/read_path.dir/read_path.cpp.o"
  "CMakeFiles/read_path.dir/read_path.cpp.o.d"
  "read_path"
  "read_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
