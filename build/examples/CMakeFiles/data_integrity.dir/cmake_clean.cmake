file(REMOVE_RECURSE
  "CMakeFiles/data_integrity.dir/data_integrity.cpp.o"
  "CMakeFiles/data_integrity.dir/data_integrity.cpp.o.d"
  "data_integrity"
  "data_integrity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
