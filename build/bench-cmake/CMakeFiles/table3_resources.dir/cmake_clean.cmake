file(REMOVE_RECURSE
  "../bench/table3_resources"
  "../bench/table3_resources.pdb"
  "CMakeFiles/table3_resources.dir/table3_resources.cpp.o"
  "CMakeFiles/table3_resources.dir/table3_resources.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
