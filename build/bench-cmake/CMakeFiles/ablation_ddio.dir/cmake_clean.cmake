file(REMOVE_RECURSE
  "../bench/ablation_ddio"
  "../bench/ablation_ddio.pdb"
  "CMakeFiles/ablation_ddio.dir/ablation_ddio.cpp.o"
  "CMakeFiles/ablation_ddio.dir/ablation_ddio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ddio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
