file(REMOVE_RECURSE
  "../bench/fig04_memory_pressure"
  "../bench/fig04_memory_pressure.pdb"
  "CMakeFiles/fig04_memory_pressure.dir/fig04_memory_pressure.cpp.o"
  "CMakeFiles/fig04_memory_pressure.dir/fig04_memory_pressure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_memory_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
