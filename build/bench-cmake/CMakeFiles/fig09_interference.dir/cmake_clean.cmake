file(REMOVE_RECURSE
  "../bench/fig09_interference"
  "../bench/fig09_interference.pdb"
  "CMakeFiles/fig09_interference.dir/fig09_interference.cpp.o"
  "CMakeFiles/fig09_interference.dir/fig09_interference.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
