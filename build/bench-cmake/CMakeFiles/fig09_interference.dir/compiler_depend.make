# Empty compiler generated dependencies file for fig09_interference.
# This may be replaced when dependencies are built.
