# Empty compiler generated dependencies file for ext_maintenance.
# This may be replaced when dependencies are built.
