file(REMOVE_RECURSE
  "../bench/ext_maintenance"
  "../bench/ext_maintenance.pdb"
  "CMakeFiles/ext_maintenance.dir/ext_maintenance.cpp.o"
  "CMakeFiles/ext_maintenance.dir/ext_maintenance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
