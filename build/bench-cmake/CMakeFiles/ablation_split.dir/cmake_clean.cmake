file(REMOVE_RECURSE
  "../bench/ablation_split"
  "../bench/ablation_split.pdb"
  "CMakeFiles/ablation_split.dir/ablation_split.cpp.o"
  "CMakeFiles/ablation_split.dir/ablation_split.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
