file(REMOVE_RECURSE
  "../bench/micro_lz4"
  "../bench/micro_lz4.pdb"
  "CMakeFiles/micro_lz4.dir/micro_lz4.cpp.o"
  "CMakeFiles/micro_lz4.dir/micro_lz4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lz4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
