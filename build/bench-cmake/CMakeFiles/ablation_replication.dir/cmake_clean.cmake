file(REMOVE_RECURSE
  "../bench/ablation_replication"
  "../bench/ablation_replication.pdb"
  "CMakeFiles/ablation_replication.dir/ablation_replication.cpp.o"
  "CMakeFiles/ablation_replication.dir/ablation_replication.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
