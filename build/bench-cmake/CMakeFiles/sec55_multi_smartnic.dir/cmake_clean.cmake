file(REMOVE_RECURSE
  "../bench/sec55_multi_smartnic"
  "../bench/sec55_multi_smartnic.pdb"
  "CMakeFiles/sec55_multi_smartnic.dir/sec55_multi_smartnic.cpp.o"
  "CMakeFiles/sec55_multi_smartnic.dir/sec55_multi_smartnic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_multi_smartnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
