# Empty compiler generated dependencies file for sec55_multi_smartnic.
# This may be replaced when dependencies are built.
