file(REMOVE_RECURSE
  "../bench/fig07_throughput_latency"
  "../bench/fig07_throughput_latency.pdb"
  "CMakeFiles/fig07_throughput_latency.dir/fig07_throughput_latency.cpp.o"
  "CMakeFiles/fig07_throughput_latency.dir/fig07_throughput_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_throughput_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
