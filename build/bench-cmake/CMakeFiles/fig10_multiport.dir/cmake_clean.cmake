file(REMOVE_RECURSE
  "../bench/fig10_multiport"
  "../bench/fig10_multiport.pdb"
  "CMakeFiles/fig10_multiport.dir/fig10_multiport.cpp.o"
  "CMakeFiles/fig10_multiport.dir/fig10_multiport.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multiport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
