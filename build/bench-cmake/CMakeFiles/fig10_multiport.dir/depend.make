# Empty dependencies file for fig10_multiport.
# This may be replaced when dependencies are built.
