# Empty compiler generated dependencies file for ext_block_size.
# This may be replaced when dependencies are built.
