file(REMOVE_RECURSE
  "../bench/ext_block_size"
  "../bench/ext_block_size.pdb"
  "CMakeFiles/ext_block_size.dir/ext_block_size.cpp.o"
  "CMakeFiles/ext_block_size.dir/ext_block_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_block_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
