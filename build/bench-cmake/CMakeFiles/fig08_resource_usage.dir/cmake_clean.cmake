file(REMOVE_RECURSE
  "../bench/fig08_resource_usage"
  "../bench/fig08_resource_usage.pdb"
  "CMakeFiles/fig08_resource_usage.dir/fig08_resource_usage.cpp.o"
  "CMakeFiles/fig08_resource_usage.dir/fig08_resource_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_resource_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
