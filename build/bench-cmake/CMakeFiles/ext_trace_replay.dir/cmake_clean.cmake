file(REMOVE_RECURSE
  "../bench/ext_trace_replay"
  "../bench/ext_trace_replay.pdb"
  "CMakeFiles/ext_trace_replay.dir/ext_trace_replay.cpp.o"
  "CMakeFiles/ext_trace_replay.dir/ext_trace_replay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
