# Empty dependencies file for ext_trace_replay.
# This may be replaced when dependencies are built.
