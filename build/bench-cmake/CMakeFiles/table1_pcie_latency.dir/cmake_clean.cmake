file(REMOVE_RECURSE
  "../bench/table1_pcie_latency"
  "../bench/table1_pcie_latency.pdb"
  "CMakeFiles/table1_pcie_latency.dir/table1_pcie_latency.cpp.o"
  "CMakeFiles/table1_pcie_latency.dir/table1_pcie_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pcie_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
