file(REMOVE_RECURSE
  "../bench/ext_read_path"
  "../bench/ext_read_path.pdb"
  "CMakeFiles/ext_read_path.dir/ext_read_path.cpp.o"
  "CMakeFiles/ext_read_path.dir/ext_read_path.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_read_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
