# Empty dependencies file for ext_read_path.
# This may be replaced when dependencies are built.
