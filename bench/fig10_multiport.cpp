/**
 * @file
 * Reproduces Figure 10: the effect of the number of networking ports.
 *
 * Paper (Section 5.4): SmartDS throughput scales linearly with ports —
 * SmartDS-4 reaches ~4x the SmartDS-1 maximum (i.e. ~4.3x the CPU-only
 * middle tier) — while average and tail latencies stay flat, and the
 * host memory/PCIe footprint stays a small fraction of one link because
 * only headers cross to the host (two CPU cores per port suffice).
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

double
usage(const workload::ExperimentResult &r, const char *key)
{
    const auto it = r.usageGbps.find(key);
    return it == r.usageGbps.end() ? 0.0 : it->second;
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "fig10_multiport");

    std::printf("Figure 10: effect of the number of network ports\n\n");

    // ports=1 is the scale baseline; sweep() keeps it under --smoke.
    const std::vector<unsigned> port_counts = sweep({1u, 2u, 4u, 6u});

    workload::SweepRunner runner(harness.jobs());
    std::vector<std::size_t> indices;
    for (unsigned ports : port_counts) {
        const unsigned cores = 2 * ports; // two cores per port (5.5)
        indices.push_back(
            runner.add(saturating(Design::SmartDs, cores, ports)));
    }
    const std::size_t cpu_index =
        runner.add(saturating(Design::CpuOnly, 48));
    const std::size_t sd4_index =
        runner.add(saturating(Design::SmartDs, 8, 4));
    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    Table table("Fig 10a-c - SmartDS port scaling");
    table.header({"ports", "cores", "tput(Gbps)", "scale", "avg(us)",
                  "p99(us)", "p999(us)", "mem(Gbps)", "pcie.h2d(Gbps)",
                  "pcie.d2h(Gbps)"});

    double base = 0.0;
    for (std::size_t i = 0; i < port_counts.size(); ++i) {
        const unsigned ports = port_counts[i];
        const unsigned cores = 2 * ports;
        const auto &r = runner.result(indices[i]);
        if (ports == 1)
            base = r.throughputGbps;
        table.row({fmt(ports), fmt(cores), fmt(r.throughputGbps, 1),
                   fmt(r.throughputGbps / base, 2),
                   fmt(r.avgLatencyUs, 1), fmt(r.p99LatencyUs, 1),
                   fmt(r.p999LatencyUs, 1),
                   fmt(usage(r, "mem.read") + usage(r, "mem.write"), 1),
                   fmt(usage(r, "pcie.smartds.h2d"), 2),
                   fmt(usage(r, "pcie.smartds.d2h"), 2)});
    }
    table.print();
    table.writeCsv("results/fig10_multiport.csv");

    const auto &cpu = runner.result(cpu_index);
    const auto &sd4 = runner.result(sd4_index);
    std::printf("\nSmartDS-4 achieves %.1fx the CPU-only middle tier "
                "(paper: up to 4.3x).\n",
                sd4.throughputGbps / cpu.throughputGbps);
    return 0;
}
