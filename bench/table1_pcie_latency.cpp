/**
 * @file
 * Reproduces Table 1: PCIe DMA latency under different pressure.
 *
 * Paper setup (Section 3.1.3): a Xilinx U280 issues DMA reads (H2D) and
 * writes (D2H) against host memory; the issue rate makes the PCIe
 * interconnect under-loaded or heavily loaded. Measured: 1.4 us in both
 * directions when idle; 11.3 us (H2D) and 6.6 us (D2H) when loaded —
 * loaded DMAs queue behind the engine's outstanding-request window.
 */

#include <cstdio>

#include <functional>

#include "bench_common.h"
#include "common/calibration.h"
#include "common/running_stats.h"
#include "common/table.h"
#include "mem/memory_system.h"
#include "pcie/pcie.h"
#include "sim/simulator.h"

namespace {

using namespace smartds;
using namespace smartds::time_literals;

struct Sample
{
    double h2dUs;
    double d2hUs;
    std::uint64_t events;
};

Sample
run(bool heavy)
{
    sim::Simulator sim;
    mem::MemorySystem memory(sim, "mem", {});
    pcie::PcieLink link(sim, "fpga.pcie");
    pcie::DmaEngine::Config config;
    config.chunkBytes = calibration::pcieProbeBytes;
    config.readWindowBytes =
        calibration::pcieH2dQueueDepth * calibration::pcieProbeBytes;
    config.writeWindowBytes =
        calibration::pcieD2hQueueDepth * calibration::pcieProbeBytes;
    pcie::DmaEngine dma(sim, "fpga.dma", &memory,
                        {&link.h2d()}, {&link.d2h()}, config);

    auto *read_flow = memory.createFlow("dma-read");
    auto *write_flow = memory.createFlow("dma-write");

    // Saturating issue streams in both directions. Declared at function
    // scope: the reissue callbacks reference these objects for the whole
    // run. One stream per DMA tag keeps the engine's window full, which
    // is exactly the "heavily loaded" condition of the paper's probe.
    std::function<void()> pump_read = [&]() {
        pcie::DmaEngine::Options options;
        options.memFlow = read_flow;
        dma.read(calibration::pcieProbeBytes, options,
                 [&](Tick) { pump_read(); });
    };
    std::function<void()> pump_write = [&]() {
        pcie::DmaEngine::Options options;
        options.memFlow = write_flow;
        options.stallOnMemory = false;
        dma.write(calibration::pcieProbeBytes, options,
                  [&](Tick) { pump_write(); });
    };
    if (heavy) {
        for (unsigned i = 0; i < calibration::pcieH2dQueueDepth; ++i)
            pump_read();
        for (unsigned i = 0; i < calibration::pcieD2hQueueDepth; ++i)
            pump_write();
        sim.runUntil(1 * ticksPerMillisecond);
    }

    // Probe: average the latency of individual DMAs.
    RunningStats h2d, d2h;
    const int probes = smartds::bench::smoke() ? 50 : 200;
    for (int i = 0; i < probes; ++i) {
        pcie::DmaEngine::Options read_options;
        read_options.memFlow = read_flow;
        dma.read(calibration::pcieProbeBytes, read_options,
                 [&](Tick t) { h2d.add(toMicroseconds(t)); });
        pcie::DmaEngine::Options write_options;
        write_options.memFlow = write_flow;
        write_options.stallOnMemory = false;
        dma.write(calibration::pcieProbeBytes, write_options,
                  [&](Tick t) { d2h.add(toMicroseconds(t)); });
        sim.runUntil(sim.now() + 50 * ticksPerMicrosecond);
        if (!heavy)
            sim.run();
    }
    return Sample{h2d.mean(), d2h.mean(), sim.eventsExecuted()};
}

} // namespace

int
main(int argc, char **argv)
{
    smartds::bench::Harness harness(argc, argv, "table1_pcie_latency");

    std::printf("Table 1: PCIe latency under different pressure\n"
                "(paper: 1.4/1.4 us idle; 11.3 us H2D, 6.6 us D2H "
                "loaded)\n\n");

    const Sample idle = run(false);
    const Sample heavy = run(true);
    harness.noteEvents(idle.events + heavy.events);

    Table table("Table 1 - PCIe DMA latency");
    table.header({"", "H2D latency (us)", "D2H latency (us)"});
    table.row({"Under Loaded", fmt(idle.h2dUs, 1), fmt(idle.d2hUs, 1)});
    table.row({"Heavily Loaded", fmt(heavy.h2dUs, 1), fmt(heavy.d2hUs, 1)});
    table.print();
    table.writeCsv("results/table1_pcie_latency.csv");
    return 0;
}
