/**
 * @file
 * Extension: serving I/O beside real maintenance services.
 *
 * Section 5.3 uses Intel MLC as a stand-in for the maintenance services
 * (Section 2.2.3: LSM compaction, scrubbing, snapshots) that share every
 * middle-tier server. This bench runs the actual maintenance model —
 * periodic compaction bursts that seize cores and stream buffers through
 * host memory — beside the serving path, in the three deployments an
 * operator can pick: no maintenance, maintenance sharing the serving
 * cores, and maintenance on dedicated cores (memory still shared).
 */

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;
using Maintenance = workload::ExperimentConfig::Maintenance;

const char *
maintenanceName(Maintenance m)
{
    switch (m) {
      case Maintenance::Off:
        return "off";
      case Maintenance::SharedCores:
        return "shared-cores";
      case Maintenance::DedicatedCores:
        return "dedicated-cores";
    }
    return "?";
}

} // namespace

int
main()
{
    std::printf("Extension: co-located maintenance services "
                "(LSM compaction bursts: 8 cores, 8 MiB every ~2 ms)\n\n");

    Table table("Serving write requests beside maintenance");
    table.header({"design", "maintenance", "tput(Gbps)", "vs-off",
                  "avg(us)", "p999(us)"});

    for (Design design : {Design::CpuOnly, Design::SmartDs}) {
        double baseline = 0.0;
        for (Maintenance m : {Maintenance::Off, Maintenance::SharedCores,
                              Maintenance::DedicatedCores}) {
            auto config = design == Design::CpuOnly
                              ? saturating(Design::CpuOnly, 48)
                              : saturating(Design::SmartDs, 2);
            config.maintenance = m;
            const auto r = workload::runWriteExperiment(config);
            if (m == Maintenance::Off)
                baseline = r.throughputGbps;
            table.row({middletier::designName(design),
                       maintenanceName(m), fmt(r.throughputGbps, 1),
                       fmt(r.throughputGbps / baseline, 2),
                       fmt(r.avgLatencyUs, 1),
                       fmt(r.p999LatencyUs, 1)});
        }
        table.separator();
    }
    table.print();
    table.writeCsv("results/ext_maintenance.csv");

    std::printf(
        "\nOn the CPU-only tier maintenance competes with serving "
        "whichever cores it runs on - with shared cores throughput drops "
        "and tails fatten.\nSmartDS serves from just two cores, so "
        "sharing exactly those two with compaction is catastrophic (the "
        "shared-cores row) - but it is also unnecessary: the natural "
        "deployment gives maintenance any of the 46 idle cores "
        "(dedicated-cores row), where it has zero effect on the "
        "datapath because payloads never cross host memory. That is the "
        "performance isolation of Section 5.3.\n");
    return 0;
}
