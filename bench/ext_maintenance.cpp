/**
 * @file
 * Extension: serving I/O beside real maintenance services.
 *
 * Section 5.3 uses Intel MLC as a stand-in for the maintenance services
 * (Section 2.2.3: LSM compaction, scrubbing, snapshots) that share every
 * middle-tier server. This bench runs the actual maintenance model —
 * periodic compaction bursts that seize cores and stream buffers through
 * host memory — beside the serving path, in the three deployments an
 * operator can pick: no maintenance, maintenance sharing the serving
 * cores, and maintenance on dedicated cores (memory still shared).
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;
using Maintenance = workload::ExperimentConfig::Maintenance;

const char *
maintenanceName(Maintenance m)
{
    switch (m) {
      case Maintenance::Off:
        return "off";
      case Maintenance::SharedCores:
        return "shared-cores";
      case Maintenance::DedicatedCores:
        return "dedicated-cores";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "ext_maintenance");

    std::printf("Extension: co-located maintenance services "
                "(LSM compaction bursts: 8 cores, 8 MiB every ~2 ms)\n\n");

    const std::vector<Design> designs = {Design::CpuOnly, Design::SmartDs};
    // Maintenance::Off leads: it is the vs-off baseline under --smoke.
    const std::vector<Maintenance> modes =
        sweep({Maintenance::Off, Maintenance::SharedCores,
               Maintenance::DedicatedCores});

    workload::SweepRunner runner(harness.jobs());
    std::vector<std::vector<std::size_t>> indices;
    for (Design design : designs) {
        std::vector<std::size_t> per_design;
        for (Maintenance m : modes) {
            auto config = design == Design::CpuOnly
                              ? saturating(Design::CpuOnly, 48)
                              : saturating(Design::SmartDs, 2);
            config.maintenance = m;
            per_design.push_back(runner.add(config));
        }
        indices.push_back(std::move(per_design));
    }
    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    Table table("Serving write requests beside maintenance");
    table.header({"design", "maintenance", "tput(Gbps)", "vs-off",
                  "avg(us)", "p999(us)"});

    for (std::size_t di = 0; di < designs.size(); ++di) {
        double baseline = 0.0;
        for (std::size_t mi = 0; mi < modes.size(); ++mi) {
            const auto &r = runner.result(indices[di][mi]);
            if (modes[mi] == Maintenance::Off)
                baseline = r.throughputGbps;
            table.row({middletier::designName(designs[di]),
                       maintenanceName(modes[mi]),
                       fmt(r.throughputGbps, 1),
                       fmt(r.throughputGbps / baseline, 2),
                       fmt(r.avgLatencyUs, 1),
                       fmt(r.p999LatencyUs, 1)});
        }
        table.separator();
    }
    table.print();
    table.writeCsv("results/ext_maintenance.csv");

    std::printf(
        "\nOn the CPU-only tier maintenance competes with serving "
        "whichever cores it runs on - with shared cores throughput drops "
        "and tails fatten.\nSmartDS serves from just two cores, so "
        "sharing exactly those two with compaction is catastrophic (the "
        "shared-cores row) - but it is also unnecessary: the natural "
        "deployment gives maintenance any of the 46 idle cores "
        "(dedicated-cores row), where it has zero effect on the "
        "datapath because payloads never cross host memory. That is the "
        "performance isolation of Section 5.3.\n");
    return 0;
}
