/**
 * @file
 * Extension: durability policy — 3-way replication vs Reed-Solomon.
 *
 * The paper replicates every compressed block three times (Section 2.1).
 * Erasure coding stores the same data at a fraction of that overhead:
 * RS(k, m) splits a block into k data shards plus m parity shards, any k
 * of which reconstruct it. This bench sweeps the durability policy —
 * 3-rep, RS(4, 2) and RS(8, 3) — across a 12-node pool spread over four
 * failure domains, and prices each policy in four currencies:
 *
 *  - storage overhead (bytes the pool holds per completed request),
 *  - network amplification (replica bytes pushed per request, the
 *    write-path tax the middle tier's NIC pays),
 *  - degraded-read latency once faults arrive (shards lost to a crash
 *    must be rebuilt from parity on the read path), and
 *  - reconstruction work (background re-encode of lost shards).
 *
 * Two sweeps: node-crash churn at increasing rates, then a correlated
 * domain crash (one rack loses power mid-window) — the failure mode
 * domain-aware placement exists for, and the one where RS(k, m) must
 * survive the loss of m shards of every stripe at once.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using namespace smartds::time_literals;
using middletier::Design;
using middletier::ReplicationPolicy;

struct Policy
{
    const char *name;
    ReplicationPolicy policy;
    unsigned k; ///< data shards (EC only)
    unsigned m; ///< parity shards (EC only)
};

workload::ExperimentConfig
durable(const Policy &p)
{
    auto config = moderate(Design::SmartDs, 2);
    config.storageServers = 12;
    // Four failure domains: RS(8, 3) places its 11 shards at most three
    // per domain, so one domain = at most m lost shards per stripe and
    // every policy survives a whole rack going dark.
    config.failureDomains = 4;
    config.readFraction = 0.2;
    config.replicationPolicy = p.policy;
    config.ecDataShards = p.k;
    config.ecParityShards = p.m;
    // One retry, then background repair — stragglers stuck behind an
    // outage drain through reconstruction, not the latency path.
    config.replicaMaxRetries = 1;
    return config;
}

/** Stage-breakdown lookup (tracing runs only); nullptr if absent. */
const trace::StageStats *
findStage(const workload::ExperimentResult &r, const char *name)
{
    for (const trace::StageStats &s : r.stages)
        if (std::string(s.stage) == name)
            return &s;
    return nullptr;
}

double
perRequest(std::uint64_t bytes, const workload::ExperimentResult &r)
{
    return r.requestsCompleted
               ? static_cast<double>(bytes) /
                     static_cast<double>(r.requestsCompleted)
               : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "ext_ec_durability");

    std::printf("Extension: erasure-coded durability vs 3-way "
                "replication (12-node pool, 4 failure domains, 20%% "
                "reads, SmartDS)\n\n");

    // 3-rep leads so relative columns have their baseline even under a
    // smoke trim; the policy list itself is never trimmed — the whole
    // point of the bench is the side-by-side.
    const std::vector<Policy> policies = {
        {"3-rep", ReplicationPolicy::Replicate, 0, 0},
        {"rs(4,2)", ReplicationPolicy::ErasureCode, 4, 2},
        {"rs(8,3)", ReplicationPolicy::ErasureCode, 8, 3},
    };
    const std::vector<Tick> intervals =
        sweep({Tick{0}, 2 * ticksPerMillisecond, 1 * ticksPerMillisecond});

    workload::SweepRunner runner(harness.jobs());
    std::vector<std::vector<std::size_t>> churn_indices;
    for (const Policy &p : policies) {
        std::vector<std::size_t> per_policy;
        for (const Tick interval : intervals) {
            auto config = durable(p);
            config.crashMeanInterval = interval;
            config.crashOutage = 2 * ticksPerMillisecond;
            per_policy.push_back(runner.add(config));
        }
        churn_indices.push_back(std::move(per_policy));
    }
    // Domain crash mid-window, nodes stay down for the rest of the run:
    // every stripe loses the shards that rack held, reads must decode
    // from parity, and reconstruction re-homes the lost shards. Traced
    // so the degraded-read stage has its own percentiles.
    std::vector<std::size_t> domain_indices;
    for (const Policy &p : policies) {
        auto config = durable(p);
        config.domainCrashAt = config.warmup + config.window / 4;
        config.domainCrashOutage = 0; // permanent
        config.traceSample = 1;
        domain_indices.push_back(runner.add(config));
    }
    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    Table churn("Durability policy vs crash churn (2 ms outages)");
    churn.header({"policy", "crash-ivl(us)", "tput(Gbps)", "p99(us)",
                  "net-amp", "stored-x", "degraded", "unserved",
                  "repairs"});
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        for (std::size_t ii = 0; ii < intervals.size(); ++ii) {
            const auto &r = runner.result(churn_indices[pi][ii]);
            const auto &base = runner.result(churn_indices[0][ii]);
            // Bytes per completed request, relative to 3-rep at the
            // same crash rate: nominal 3x for replication, (k+m)/k for
            // RS, plus whatever failover resends add on top.
            const double net_amp =
                3.0 * perRequest(r.failover.replicaBytesSent, r) /
                perRequest(base.failover.replicaBytesSent, base);
            const double stored_x =
                3.0 * perRequest(r.storageBytesStored, r) /
                perRequest(base.storageBytesStored, base);
            churn.row({policies[pi].name,
                       intervals[ii]
                           ? fmt(toMicroseconds(intervals[ii]), 0)
                           : "off",
                       fmt(r.throughputGbps, 1), fmt(r.p99LatencyUs, 1),
                       fmt(net_amp, 2), fmt(stored_x, 2),
                       fmt(static_cast<double>(
                               r.failover.degradedReads), 0),
                       fmt(static_cast<double>(
                               r.failover.readsUnserved), 0),
                       fmt(static_cast<double>(r.repairsCompleted), 0)});
        }
        churn.separator();
    }
    churn.print();
    churn.writeCsv("results/ext_ec_durability.csv");

    std::printf("\n");
    Table domain("Correlated domain crash (one rack of four lost "
                 "mid-window, permanent)");
    domain.header({"policy", "tput(Gbps)", "p99(us)", "degraded",
                   "degr-p99(us)", "unserved", "reconstr",
                   "reconstr(us)", "deduped"});
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        const auto &r = runner.result(domain_indices[pi]);
        const trace::StageStats *degr =
            findStage(r, "ec.degraded_read");
        domain.row({policies[pi].name, fmt(r.throughputGbps, 1),
                    fmt(r.p99LatencyUs, 1),
                    fmt(static_cast<double>(r.failover.degradedReads), 0),
                    degr ? fmt(degr->p99Us, 1) : "-",
                    fmt(static_cast<double>(r.failover.readsUnserved), 0),
                    fmt(static_cast<double>(r.reconstructionsCompleted),
                        0),
                    fmt(r.avgReconstructionUs, 1),
                    fmt(static_cast<double>(r.repairsDeduped), 0)});
    }
    domain.print();
    domain.writeCsv("results/ext_ec_durability_domain.csv");

    std::printf(
        "\nRS(4, 2) halves both the stored bytes and the replica "
        "traffic of 3-rep (1.5x vs 3x), and RS(8, 3) shaves further "
        "(1.375x) while tolerating a third shard loss per stripe. The "
        "bill arrives on the fault path: a degraded read must gather k "
        "shards instead of touching one replica, so its tail stretches "
        "with every crashed node the ring probe trips over, and a lost "
        "rack turns into k-way reconstruction traffic instead of a "
        "single-copy resend. Replication stays the latency-simple "
        "choice; erasure coding is the capacity-efficient one, priced "
        "in degraded-read tail and reconstruction bandwidth.\n");
    return 0;
}
