/**
 * @file
 * Reproduces Table 3: FPGA resource consumption of the "Acc" baseline
 * and the SmartDS-1/2/4/6 configurations, from the component-level
 * resource budget (each port adds an extended RoCE stack, Split and
 * Assemble modules, an LZ4 engine and an HBM crossbar share).
 */

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"
#include "smartds/resource_model.h"

int
main(int argc, char **argv)
{
    using namespace smartds;
    using namespace smartds::device;

    bench::Harness harness(argc, argv, "table3_resources");

    std::printf("Table 3: FPGA resource consumption\n"
                "(paper: Acc 112K/109K/172; SmartDS-1 157K/143K/292; "
                "linear per port up to 941K/857K/1752 for 6 ports)\n\n");

    const ResourceVec cap = vcu128Capacity();

    Table table("Table 3 - FPGA resource consumption");
    table.header({"Name", "LUTs (K)", "REGs (K)", "BRAMs"});

    auto row = [&](const char *name, const ResourceVec &r) {
        const ResourceVec pct = utilizationPercent(r, cap);
        table.row({name,
                   fmt(r.lutK, 0) + " (" + fmt(pct.lutK, 1) + "%)",
                   fmt(r.regK, 0) + " (" + fmt(pct.regK, 1) + "%)",
                   fmt(r.bram, 0) + " (" + fmt(pct.bram, 1) + "%)"});
    };
    row("\"Acc\"", accResources());
    for (unsigned ports : {1u, 2u, 4u, 6u}) {
        const std::string name =
            "\"SmartDS-" + std::to_string(ports) + "\"";
        row(name.c_str(), smartdsResources(ports));
    }
    table.print();
    table.writeCsv("results/table3_resources.csv");

    Table parts("Per-port component budget");
    parts.header({"Component", "LUTs (K)", "REGs (K)", "BRAMs"});
    for (const auto &c : smartdsPortComponents())
        parts.row({c.name, fmt(c.cost.lutK, 1), fmt(c.cost.regK, 1),
                   fmt(c.cost.bram, 0)});
    std::printf("\n");
    parts.print();
    parts.writeCsv("results/table3_components.csv");
    return 0;
}
