/**
 * @file
 * Microbenchmarks of the functional LZ4 codec on the synthetic corpus
 * (google-benchmark): compression/decompression throughput per profile
 * and effort, plus the achieved ratios. These are the *functional*
 * numbers of this host; the simulator's software-compression *rate* is
 * calibrated to the paper's platform (2.1 Gbps/logical core at 2.2 GHz)
 * in common/calibration.h.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "corpus/corpus.h"
#include "lz4/lz4.h"

namespace {

using namespace smartds;

const std::vector<std::uint8_t> &
profileData(corpus::Profile p)
{
    // simlint: allow(mutable-global): bench-process memo of generated
    // corpora; google-benchmark runs repetitions single-threaded and no
    // simulation state is derived from the cache's iteration order
    static std::map<corpus::Profile, std::vector<std::uint8_t>> cache;
    auto it = cache.find(p);
    if (it == cache.end()) {
        Rng rng(2024);
        it = cache.emplace(p, corpus::generate(p, 1u << 20, rng)).first;
    }
    return it->second;
}

void
compressProfile(benchmark::State &state, corpus::Profile profile,
                int effort)
{
    const auto &data = profileData(profile);
    std::vector<std::uint8_t> out(lz4::maxCompressedSize(4096));
    std::size_t offset = 0;
    std::size_t compressed_total = 0;
    std::size_t original_total = 0;
    for (auto _ : state) {
        const auto n = lz4::compress(data.data() + offset, 4096,
                                     out.data(), out.size(), effort);
        benchmark::DoNotOptimize(n);
        compressed_total += n.value_or(4096);
        original_total += 4096;
        offset = (offset + 4096) % (data.size() - 4096);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(original_total));
    state.counters["ratio"] = static_cast<double>(compressed_total) /
                              static_cast<double>(original_total);
}

void
decompressProfile(benchmark::State &state, corpus::Profile profile)
{
    const auto &data = profileData(profile);
    // Pre-compress a set of blocks.
    std::vector<std::vector<std::uint8_t>> blocks;
    for (std::size_t off = 0; off + 4096 <= data.size() && blocks.size() < 64;
         off += 4096) {
        std::vector<std::uint8_t> block(data.begin() + off,
                                        data.begin() + off + 4096);
        blocks.push_back(lz4::compress(block, 1));
    }
    std::vector<std::uint8_t> out(4096);
    std::size_t i = 0;
    std::size_t bytes = 0;
    for (auto _ : state) {
        const auto n = lz4::decompress(blocks[i].data(), blocks[i].size(),
                                       out.data(), out.size());
        benchmark::DoNotOptimize(n);
        bytes += n.value_or(0);
        i = (i + 1) % blocks.size();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}

} // namespace

BENCHMARK_CAPTURE(compressProfile, text_e1, corpus::Profile::Text, 1);
BENCHMARK_CAPTURE(compressProfile, text_e6, corpus::Profile::Text, 6);
BENCHMARK_CAPTURE(compressProfile, xml_e1, corpus::Profile::Xml, 1);
BENCHMARK_CAPTURE(compressProfile, database_e1, corpus::Profile::Database,
                  1);
BENCHMARK_CAPTURE(compressProfile, executable_e1,
                  corpus::Profile::Executable, 1);
BENCHMARK_CAPTURE(compressProfile, scientific_e1,
                  corpus::Profile::Scientific, 1);
BENCHMARK_CAPTURE(compressProfile, imaging_e1, corpus::Profile::Imaging, 1);

BENCHMARK_CAPTURE(decompressProfile, text, corpus::Profile::Text);
BENCHMARK_CAPTURE(decompressProfile, xml, corpus::Profile::Xml);
BENCHMARK_CAPTURE(decompressProfile, executable,
                  corpus::Profile::Executable);
BENCHMARK_CAPTURE(decompressProfile, imaging, corpus::Profile::Imaging);

int
main(int argc, char **argv)
{
    smartds::bench::Harness harness(argc, argv, "micro_lz4");
    // Under --smoke, cap each benchmark's measuring time so the whole
    // binary finishes in seconds; explicit user flags still win because
    // google-benchmark takes the last occurrence.
    std::string min_time = "--benchmark_min_time=0.01";
    std::vector<char *> args(argv, argv + argc);
    if (harness.smoke())
        args.insert(args.begin() + 1, min_time.data());
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
