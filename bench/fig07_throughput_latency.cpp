/**
 * @file
 * Reproduces Figure 7: throughput and average/p99/p999 latency of the
 * four middle-tier designs while serving 4 KiB write requests with 3-way
 * replication, as a function of the cores the design may use.
 *
 * Expected shapes (paper Section 5.2):
 *  - CPU-only ramps nearly linearly and needs all 48 logical cores to
 *    approach the peak the other designs reach with two cores.
 *  - Acc and SmartDS-1 peak with two cores (compression is offloaded).
 *  - BF2 is capped by its ~40 Gbps on-card compression engine.
 *  - At low load, BF2 has the lowest average latency (no host hop), Acc
 *    the highest (two extra PCIe data movements + notifications), and
 *    SmartDS sits at CPU-only's level; CPU-only latency rises with core
 *    count (SMT pairing + memory/PCIe pressure at higher throughput).
 */

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

void
runRow(Table &tput, Table &lat, const char *label, Design design,
       unsigned cores, unsigned ports)
{
    const auto sat =
        workload::runWriteExperiment(saturating(design, cores, ports));
    const auto mod =
        workload::runWriteExperiment(moderate(design, cores, ports));
    tput.row({label, fmt(cores), fmt(sat.throughputGbps, 1),
              fmt(sat.avgLatencyUs, 1), fmt(sat.p99LatencyUs, 1),
              fmt(sat.p999LatencyUs, 1)});
    lat.row({label, fmt(cores), fmt(mod.throughputGbps, 1),
             fmt(mod.avgLatencyUs, 1), fmt(mod.p99LatencyUs, 1),
             fmt(mod.p999LatencyUs, 1)});
}

} // namespace

int
main()
{
    std::printf("Figure 7: throughput and latency of serving write "
                "requests\n\n");

    Table tput("Fig 7a + loaded latency - saturating load");
    tput.header({"design", "cores", "tput(Gbps)", "avg(us)", "p99(us)",
                 "p999(us)"});
    Table lat("Fig 7b-d - latency at moderate load");
    lat.header({"design", "cores", "tput(Gbps)", "avg(us)", "p99(us)",
                "p999(us)"});

    for (unsigned cores : {2u, 4u, 8u, 16u, 24u, 32u, 40u, 48u})
        runRow(tput, lat, "CPU-only", Design::CpuOnly, cores, 1);
    tput.separator();
    lat.separator();
    for (unsigned cores : {1u, 2u, 4u})
        runRow(tput, lat, "Acc", Design::Accelerator, cores, 1);
    tput.separator();
    lat.separator();
    for (unsigned cores : {1u, 2u, 4u, 8u})
        runRow(tput, lat, "BF2", Design::Bf2, cores, 2);
    tput.separator();
    lat.separator();
    for (unsigned cores : {1u, 2u, 4u})
        runRow(tput, lat, "SmartDS-1", Design::SmartDs, cores, 1);

    tput.print();
    tput.writeCsv("results/fig07_throughput.csv");
    std::printf("\n");
    lat.print();
    lat.writeCsv("results/fig07_latency.csv");

    // Headline comparison at each design's peak configuration.
    const auto cpu = workload::runWriteExperiment(
        saturating(Design::CpuOnly, 48));
    const auto sd = workload::runWriteExperiment(
        saturating(Design::SmartDs, 2));
    std::printf("\nAt peak: CPU-only %.1f Gbps vs SmartDS-1 %.1f Gbps; "
                "latency reduction avg %.1fx p99 %.1fx p999 %.1fx\n"
                "(paper: avg 2.6x, p99 3.4x, p999 3.5x at comparable "
                "throughput)\n",
                cpu.throughputGbps, sd.throughputGbps,
                cpu.avgLatencyUs / sd.avgLatencyUs,
                cpu.p99LatencyUs / sd.p99LatencyUs,
                cpu.p999LatencyUs / sd.p999LatencyUs);
    return 0;
}
