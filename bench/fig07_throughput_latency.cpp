/**
 * @file
 * Reproduces Figure 7: throughput and average/p99/p999 latency of the
 * four middle-tier designs while serving 4 KiB write requests with 3-way
 * replication, as a function of the cores the design may use.
 *
 * Expected shapes (paper Section 5.2):
 *  - CPU-only ramps nearly linearly and needs all 48 logical cores to
 *    approach the peak the other designs reach with two cores.
 *  - Acc and SmartDS-1 peak with two cores (compression is offloaded).
 *  - BF2 is capped by its ~40 Gbps on-card compression engine.
 *  - At low load, BF2 has the lowest average latency (no host hop), Acc
 *    the highest (two extra PCIe data movements + notifications), and
 *    SmartDS sits at CPU-only's level; CPU-only latency rises with core
 *    count (SMT pairing + memory/PCIe pressure at higher throughput).
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

/** One table row: a (design, cores) point with its queued experiments. */
struct Row
{
    const char *label;
    unsigned cores;
    bool separatorBefore = false;
    std::size_t sat = 0; ///< SweepRunner index, saturating load.
    std::size_t mod = 0; ///< SweepRunner index, moderate load.
};

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "fig07_throughput_latency");

    std::printf("Figure 7: throughput and latency of serving write "
                "requests\n\n");

    // Queue every experiment up front so independent points can run
    // concurrently; rows are emitted afterwards in queue order, keeping
    // the output byte-identical to the serial sweep.
    workload::SweepRunner runner(harness.jobs());
    std::vector<Row> rows;
    bool first_group = true;
    auto group = [&](const char *label, Design design, unsigned ports,
                     const std::vector<unsigned> &core_counts) {
        bool first_row = true;
        for (unsigned cores : core_counts) {
            Row row;
            row.label = label;
            row.cores = cores;
            row.separatorBefore = first_row && !first_group;
            row.sat = runner.add(saturating(design, cores, ports));
            row.mod = runner.add(moderate(design, cores, ports));
            rows.push_back(row);
            first_row = false;
        }
        first_group = false;
    };

    group("CPU-only", Design::CpuOnly, 1,
          sweep({2u, 4u, 8u, 16u, 24u, 32u, 40u, 48u}));
    group("Acc", Design::Accelerator, 1, sweep({1u, 2u, 4u}));
    group("BF2", Design::Bf2, 2, sweep({1u, 2u, 4u, 8u}));
    group("SmartDS-1", Design::SmartDs, 1, sweep({1u, 2u, 4u}));

    // Headline comparison at each design's peak configuration.
    const std::size_t peak_cpu =
        runner.add(saturating(Design::CpuOnly, 48));
    const std::size_t peak_sd = runner.add(saturating(Design::SmartDs, 2));

    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);
    harness.verifyDsan(runner);

    Table tput("Fig 7a + loaded latency - saturating load");
    tput.header({"design", "cores", "tput(Gbps)", "avg(us)", "p99(us)",
                 "p999(us)"});
    Table lat("Fig 7b-d - latency at moderate load");
    lat.header({"design", "cores", "tput(Gbps)", "avg(us)", "p99(us)",
                "p999(us)"});
    for (const Row &row : rows) {
        if (row.separatorBefore) {
            tput.separator();
            lat.separator();
        }
        const auto &sat = runner.result(row.sat);
        const auto &mod = runner.result(row.mod);
        tput.row({row.label, fmt(row.cores), fmt(sat.throughputGbps, 1),
                  fmt(sat.avgLatencyUs, 1), fmt(sat.p99LatencyUs, 1),
                  fmt(sat.p999LatencyUs, 1)});
        lat.row({row.label, fmt(row.cores), fmt(mod.throughputGbps, 1),
                 fmt(mod.avgLatencyUs, 1), fmt(mod.p99LatencyUs, 1),
                 fmt(mod.p999LatencyUs, 1)});
    }

    tput.print();
    tput.writeCsv("results/fig07_throughput.csv");
    std::printf("\n");
    lat.print();
    lat.writeCsv("results/fig07_latency.csv");

    const auto &cpu = runner.result(peak_cpu);
    const auto &sd = runner.result(peak_sd);
    std::printf("\nAt peak: CPU-only %.1f Gbps vs SmartDS-1 %.1f Gbps; "
                "latency reduction avg %.1fx p99 %.1fx p999 %.1fx\n"
                "(paper: avg 2.6x, p99 3.4x, p999 3.5x at comparable "
                "throughput)\n",
                cpu.throughputGbps, sd.throughputGbps,
                cpu.avgLatencyUs / sd.avgLatencyUs,
                cpu.p99LatencyUs / sd.p99LatencyUs,
                cpu.p999LatencyUs / sd.p999LatencyUs);
    return 0;
}
