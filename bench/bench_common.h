/**
 * @file
 * Shared helpers for the figure benchmarks: standard saturating and
 * moderate-load experiment configurations per design, the command-line
 * harness every bench binary uses (`--jobs N` to parallelize sweeps,
 * `--smoke` for a tiny CI-sized run), and the sim-perf telemetry each
 * binary appends to results/bench_perf.jsonl at exit.
 */

#ifndef SMARTDS_BENCH_BENCH_COMMON_H_
#define SMARTDS_BENCH_BENCH_COMMON_H_

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/logging.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "workload/experiment.h"
#include "workload/sweep_runner.h"

namespace smartds::bench {

/** Whether `--smoke` was passed (tiny sweep for CI / smoke tests). */
inline bool &
smokeFlag()
{
    static bool flag = false;
    return flag;
}

inline bool
smoke()
{
    return smokeFlag();
}

/** Whether `--dsan` was passed (determinism-sanitizer rerun mode). */
inline bool &
dsanFlag()
{
    static bool flag = false;
    return flag;
}

/** `--trace-out` path ("" = tracing off, the default). */
inline std::string &
traceOutFlag()
{
    static std::string path;
    return path;
}

/** `--trace-sample N` value (trace every Nth request; default 1). */
inline unsigned &
traceSampleFlag()
{
    static unsigned every = 1;
    return every;
}

/** `--shards N` value (0 = flag not passed: legacy serial kernel). */
inline unsigned &
shardsFlag()
{
    static unsigned shards = 0;
    return shards;
}

/**
 * Wall-clock stopwatch for bench-side speedup measurements. This header
 * is the only place the wall-clock lint rule allows: elapsed real time
 * is telemetry (events/sec, cache-on vs cache-off speedups) and never
 * feeds back into simulation state.
 */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** Elapsed real time since construction, seconds. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Unix timestamp for bench_perf telemetry records. */
inline long long
unixTime()
{
    return static_cast<long long>(std::time(nullptr));
}

/**
 * Under `--smoke`, trim a sweep's value list to its first element (the
 * first value is always each sweep's baseline point, so relative columns
 * like "vs-calm" stay well-defined).
 */
template <typename T>
std::vector<T>
sweep(std::initializer_list<T> full)
{
    if (smoke())
        return {*full.begin()};
    return std::vector<T>(full);
}

/**
 * Per-binary command-line harness and exit telemetry. Construct first
 * thing in main():
 *
 * @code
 *   int main(int argc, char **argv) {
 *       bench::Harness harness(argc, argv, "fig07_throughput_latency");
 *       workload::SweepRunner runner(harness.jobs());
 *       ...
 *   }
 * @endcode
 *
 * Recognized flags (removed from argv so google-benchmark binaries can
 * pass the rest through):
 *  - `--jobs N` / `--jobs=N`: worker threads for SweepRunner sweeps
 *    (default: hardware concurrency; 1 = serial, today's behaviour).
 *  - `--shards N` / `--shards=N`: run every queued experiment on the
 *    parallel PDES kernel with N executor shards and an auto-derived
 *    timing-domain partition (see ExperimentConfig::timingDomains).
 *    Results are byte-identical for any N at a fixed partition — this
 *    knob trades wall-clock only.
 *  - `--smoke`: tiny run — sweep lists trimmed to their first point and
 *    experiment windows shrunk (see saturating()).
 *  - `--trace-out PATH` / `--trace-out=PATH`: enable per-request tracing
 *    for every queued experiment and write a Perfetto/chrome://tracing
 *    JSON of the sampled requests to PATH (via exportTraces()); a
 *    per-stage latency CSV lands in results/<bench>_stages.csv.
 *  - `--trace-sample N` / `--trace-sample=N`: trace every Nth request
 *    (default 1 = all sampled requests; only meaningful with
 *    `--trace-out`).
 *  - `--dsan`: determinism sanitizer. Every queued experiment hashes its
 *    dispatched event stream (see ExperimentConfig::dsan); after the
 *    sweep, verifyDsan() reruns each config serially and fatals on the
 *    first diverging event window, and writes the per-run hashes to
 *    results/<bench>_statehash.csv for cross-process comparison.
 *
 * On destruction appends one JSON line to results/bench_perf.jsonl with
 * the events executed, wall-clock, events/sec and peak RSS of the run,
 * so the repo's simulation-performance trajectory is measurable
 * PR-over-PR.
 */
class Harness
{
  public:
    Harness(int &argc, char **argv, std::string name)
        : name_(std::move(name))
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (std::strcmp(arg, "--smoke") == 0) {
                smokeFlag() = true;
            } else if (std::strcmp(arg, "--dsan") == 0) {
                dsanFlag() = true;
            } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
                jobs_ = parseJobs(argv[++i]);
            } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
                jobs_ = parseJobs(arg + 7);
            } else if (std::strcmp(arg, "--shards") == 0 && i + 1 < argc) {
                shardsFlag() = parseShards(argv[++i]);
            } else if (std::strncmp(arg, "--shards=", 9) == 0) {
                shardsFlag() = parseShards(arg + 9);
            } else if (std::strcmp(arg, "--trace-out") == 0 &&
                       i + 1 < argc) {
                traceOutFlag() = argv[++i];
            } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
                traceOutFlag() = arg + 12;
            } else if (std::strcmp(arg, "--trace-sample") == 0 &&
                       i + 1 < argc) {
                traceSampleFlag() = parseSample(argv[++i]);
            } else if (std::strncmp(arg, "--trace-sample=", 15) == 0) {
                traceSampleFlag() = parseSample(arg + 15);
            } else {
                argv[out++] = argv[i];
            }
        }
        argc = out;
        argv[argc] = nullptr;
    }

    ~Harness()
    {
        const double wall = watch_.seconds();
        const std::uint64_t events = events_;
        struct rusage usage;
        getrusage(RUSAGE_SELF, &usage);
        const double rss_mb =
            static_cast<double>(usage.ru_maxrss) / 1024.0; // Linux: KiB

        // Per-domain totals make any speedup attributable: a lopsided
        // partition shows up here before it shows up as a flat curve.
        std::string domain_events = "[";
        for (std::size_t d = 0; d < domainEvents_.size(); ++d) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%s%llu", d ? "," : "",
                          static_cast<unsigned long long>(
                              domainEvents_[d]));
            domain_events += buf;
        }
        domain_events += "]";

        char line[768];
        std::snprintf(
            line, sizeof(line),
            "{\"bench\":\"%s\",\"jobs\":%u,\"smoke\":%s,"
            "\"shards\":%u,\"domains\":%u,"
            "\"events\":%llu,\"wall_s\":%.3f,\"events_per_sec\":%.0f,"
            "\"cross_events\":%llu,\"domain_events\":%s,"
            "\"peak_rss_mb\":%.1f,\"unix_time\":%lld}",
            name_.c_str(), jobs_, smoke() ? "true" : "false",
            shardsFlag() == 0 ? 1 : shardsFlag(), maxDomains_,
            static_cast<unsigned long long>(events), wall,
            wall > 0.0 ? static_cast<double>(events) / wall : 0.0,
            static_cast<unsigned long long>(crossEvents_),
            domain_events.c_str(), rss_mb, unixTime());

        // One write() on an O_APPEND fd: several bench binaries running
        // under ctest -j append here concurrently, and buffered ofstream
        // appends could tear a line in half (see common/file_io.h).
        if (!appendLineAtomic("results/bench_perf.jsonl", line))
            warn("could not append to results/bench_perf.jsonl");
        std::printf("[bench_perf] %s\n", line);
    }

    Harness(const Harness &) = delete;
    Harness &operator=(const Harness &) = delete;

    /** Sweep worker threads (0 never returned; >= 1). */
    unsigned jobs() const { return jobs_; }

    /** `--shards` value applied to experiment configs (>= 1). */
    unsigned shards() const { return shardsFlag() == 0 ? 1 : shardsFlag(); }

    // ---- event accounting (feeds the bench_perf record) -----------------
    //
    // The kernel no longer keeps a process-global executed counter (it
    // was the last mutable global in src/sim), so each bench attributes
    // its own events: noteSweep() after runner.run() for sweep benches,
    // noteResult()/noteEvents() for benches that drive experiments or
    // raw simulators by hand.

    /** Account raw kernel events (micro-benches driving a Simulator). */
    void noteEvents(std::uint64_t events) const { events_ += events; }

    /** Account one experiment's events + PDES telemetry. */
    void
    noteResult(const workload::ExperimentResult &result) const
    {
        events_ += result.eventsExecuted;
        crossEvents_ += result.crossChannelEvents;
        maxDomains_ = std::max(maxDomains_, result.timingDomains);
        if (domainEvents_.size() < result.domainEvents.size())
            domainEvents_.resize(result.domainEvents.size(), 0);
        for (std::size_t d = 0; d < result.domainEvents.size(); ++d)
            domainEvents_[d] += result.domainEvents[d];
    }

    /** Account every run of a finished sweep. */
    void
    noteSweep(const workload::SweepRunner &runner) const
    {
        for (std::size_t i = 0; i < runner.size(); ++i)
            noteResult(runner.result(i));
    }

    bool smoke() const { return bench::smoke(); }

    /** Whether `--dsan` was passed (determinism sanitizer on). */
    bool dsan() const { return dsanFlag(); }

    /** Whether `--trace-out` was passed (tracing requested). */
    bool tracing() const { return !traceOutFlag().empty(); }

    /**
     * Export the sweep's traces (call after runner.run(); no-op unless
     * `--trace-out` was passed):
     *  - a Perfetto / chrome://tracing JSON at the `--trace-out` path,
     *    one "process" per run in queue order (pid = queue index), so
     *    the file is byte-identical regardless of `--jobs`;
     *  - a per-stage latency breakdown CSV at results/<bench>_stages.csv.
     */
    void
    exportTraces(const workload::SweepRunner &runner) const
    {
        if (!tracing())
            return;

        trace::PerfettoWriter writer;
        std::string csv = "run,design,stage,count,avg_us,p50_us,p99_us,"
                          "p999_us\n";
        char buf[256];
        for (std::size_t i = 0; i < runner.size(); ++i) {
            const workload::ExperimentConfig &config = runner.config(i);
            const workload::ExperimentResult &result = runner.result(i);
            const char *design = middletier::designName(config.design);
            std::snprintf(buf, sizeof(buf), "%s/run%zu %s", name_.c_str(),
                          i, design);
            writer.addRun(static_cast<unsigned>(i), buf, result.spans);
            for (const trace::StageStats &s : result.stages) {
                std::snprintf(buf, sizeof(buf),
                              "%zu,%s,%s,%llu,%.3f,%.3f,%.3f,%.3f\n", i,
                              design, s.stage,
                              static_cast<unsigned long long>(s.count),
                              s.avgUs, s.p50Us, s.p99Us, s.p999Us);
                csv += buf;
            }
        }

        const std::string &json_path = traceOutFlag();
        if (!writeFileAtomic(json_path, writer.finish()))
            fatal("could not write trace JSON to '%s'", json_path.c_str());
        const std::string csv_path = "results/" + name_ + "_stages.csv";
        if (!writeFileAtomic(csv_path, csv))
            fatal("could not write stage CSV to '%s'", csv_path.c_str());
        std::printf("[trace] %u runs -> %s (stage breakdown: %s)\n",
                    writer.runs(), json_path.c_str(), csv_path.c_str());
    }

    /**
     * Determinism-sanitizer pass (call after runner.run(); no-op unless
     * `--dsan` was passed). Reruns every queued experiment serially and
     * compares its event-stream hash with the sweep's: the sweep may have
     * run the config on any worker thread in any order, so a divergence
     * means simulation state leaked across runs or depends on process
     * layout. On mismatch, reports the first diverging event window
     * (index, event range, tick range) and aborts. Also writes
     * results/<bench>_statehash.csv with one row per run, so a wrapper
     * (tests/fig07_determinism.cmake) can diff hashes across deliberately
     * perturbed process layouts.
     */
    void
    verifyDsan(const workload::SweepRunner &runner) const
    {
        if (!dsanFlag())
            return;

        std::string csv = "run,design,state_hash\n";
        char buf[160];
        for (std::size_t i = 0; i < runner.size(); ++i) {
            workload::ExperimentConfig config = runner.config(i);
            const workload::ExperimentResult &swept = runner.result(i);
            // Rerun on a single executor shard: a hash match is then a
            // direct end-to-end proof that shards=N produced the exact
            // event stream of shards=1 (the PDES determinism bar), on
            // top of the run-to-run stability it always checked.
            config.shards = 1;
            const workload::ExperimentResult rerun =
                workload::runWriteExperiment(config);
            noteResult(rerun);
            if (rerun.stateHash != swept.stateHash) {
                const sim::DsanDivergence div = sim::compareDsanWindows(
                    swept.dsanWindows, rerun.dsanWindows);
                fatal("[dsan] run %zu (%s): state hash %08x vs %08x on "
                      "rerun; first diverging window %zu (events %llu..%llu,"
                      " ticks %llu..%llu)",
                      i, middletier::designName(config.design),
                      swept.stateHash, rerun.stateHash, div.windowIndex,
                      static_cast<unsigned long long>(div.firstEvent),
                      static_cast<unsigned long long>(div.firstEvent +
                                                      div.events),
                      static_cast<unsigned long long>(div.firstTick),
                      static_cast<unsigned long long>(div.lastTick));
            }
            std::snprintf(buf, sizeof(buf), "%zu,%s,%08x\n", i,
                          middletier::designName(config.design),
                          swept.stateHash);
            csv += buf;
        }
        const std::string csv_path = "results/" + name_ + "_statehash.csv";
        if (!writeFileAtomic(csv_path, csv))
            fatal("could not write state hashes to '%s'", csv_path.c_str());
        std::printf("[dsan] %zu runs rerun, event-stream hashes stable "
                    "(%s)\n",
                    runner.size(), csv_path.c_str());
    }

  private:
    static unsigned
    parseJobs(const char *text)
    {
        char *end = nullptr;
        const long value = std::strtol(text, &end, 10);
        if (end == text || *end != '\0' || value < 0 || value > 4096)
            fatal("invalid --jobs value '%s'", text);
        return value == 0 ? workload::SweepRunner::defaultJobs()
                          : static_cast<unsigned>(value);
    }

    static unsigned
    parseSample(const char *text)
    {
        char *end = nullptr;
        const long value = std::strtol(text, &end, 10);
        if (end == text || *end != '\0' || value < 1 || value > 1'000'000)
            fatal("invalid --trace-sample value '%s'", text);
        return static_cast<unsigned>(value);
    }

    static unsigned
    parseShards(const char *text)
    {
        char *end = nullptr;
        const long value = std::strtol(text, &end, 10);
        if (end == text || *end != '\0' || value < 1 || value > 256)
            fatal("invalid --shards value '%s'", text);
        return static_cast<unsigned>(value);
    }

    std::string name_;
    unsigned jobs_ = workload::SweepRunner::defaultJobs();
    Stopwatch watch_;
    // Mutable: benches account events through a const& harness, and the
    // dsan pass (logically read-only) reruns experiments it must count.
    mutable std::uint64_t events_ = 0;
    mutable std::uint64_t crossEvents_ = 0;
    mutable unsigned maxDomains_ = 1;
    mutable std::vector<std::uint64_t> domainEvents_;
};

/** Saturating configuration (throughput measurements). */
inline workload::ExperimentConfig
saturating(middletier::Design design, unsigned cores, unsigned ports = 1)
{
    workload::ExperimentConfig config;
    config.design = design;
    config.cores = cores;
    config.ports = ports;
    // `--smoke` shrinks every experiment to a fraction of the simulated
    // time: enough to exercise the full pipeline, not enough to converge
    // publication-quality numbers.
    config.warmup = (smoke() ? 1 : 4) * ticksPerMillisecond;
    config.window = (smoke() ? 2 : 12) * ticksPerMillisecond;
    // `--trace-out` turns on span capture for every queued run; stdout
    // stays breakdown-free (tracePrint off) so parallel sweeps remain
    // deterministic — Harness::exportTraces() emits the files instead.
    if (!traceOutFlag().empty()) {
        config.traceSample = traceSampleFlag();
        config.traceEvents = true;
    }
    // `--dsan` hashes the event stream of every queued run (including in
    // non-checked builds, where hashing is otherwise off).
    config.dsan = dsanFlag();
    // `--shards N` moves every run onto the PDES kernel: N executor
    // threads over an auto-derived timing-domain partition. Without the
    // flag the config keeps the legacy serial kernel, byte-identical to
    // every run before the knob existed.
    if (shardsFlag() > 0) {
        config.shards = shardsFlag();
        config.timingDomains = 0; // auto partition from the topology
    }
    return config;
}

/**
 * Moderate-load configuration (latency measurements): enough in-flight
 * requests to keep the pipeline busy without building unbounded queues,
 * scaled to the configuration's capacity.
 */
inline workload::ExperimentConfig
moderate(middletier::Design design, unsigned cores, unsigned ports = 1)
{
    workload::ExperimentConfig config = saturating(design, cores, ports);
    config.outstandingPerClient = 2;
    switch (design) {
      case middletier::Design::CpuOnly:
        // ~1 request in flight per serving core.
        config.clients = std::max(1u, cores / 2);
        break;
      case middletier::Design::Accelerator:
        config.clients = 6;
        break;
      case middletier::Design::Bf2:
        config.clients = 5;
        break;
      case middletier::Design::SmartDs:
        config.clients = 8 * ports;
        break;
    }
    return config;
}

} // namespace smartds::bench

#endif // SMARTDS_BENCH_BENCH_COMMON_H_
