/**
 * @file
 * Shared helpers for the figure benchmarks: standard saturating and
 * moderate-load experiment configurations per design.
 */

#ifndef SMARTDS_BENCH_BENCH_COMMON_H_
#define SMARTDS_BENCH_BENCH_COMMON_H_

#include "workload/experiment.h"

namespace smartds::bench {

/** Saturating configuration (throughput measurements). */
inline workload::ExperimentConfig
saturating(middletier::Design design, unsigned cores, unsigned ports = 1)
{
    workload::ExperimentConfig config;
    config.design = design;
    config.cores = cores;
    config.ports = ports;
    config.warmup = 4 * ticksPerMillisecond;
    config.window = 12 * ticksPerMillisecond;
    return config;
}

/**
 * Moderate-load configuration (latency measurements): enough in-flight
 * requests to keep the pipeline busy without building unbounded queues,
 * scaled to the configuration's capacity.
 */
inline workload::ExperimentConfig
moderate(middletier::Design design, unsigned cores, unsigned ports = 1)
{
    workload::ExperimentConfig config = saturating(design, cores, ports);
    config.outstandingPerClient = 2;
    switch (design) {
      case middletier::Design::CpuOnly:
        // ~1 request in flight per serving core.
        config.clients = std::max(1u, cores / 2);
        break;
      case middletier::Design::Accelerator:
        config.clients = 6;
        break;
      case middletier::Design::Bf2:
        config.clients = 5;
        break;
      case middletier::Design::SmartDs:
        config.clients = 8 * ports;
        break;
    }
    return config;
}

} // namespace smartds::bench

#endif // SMARTDS_BENCH_BENCH_COMMON_H_
