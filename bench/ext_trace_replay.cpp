/**
 * @file
 * Extension: production-like bursty traffic, replayed open loop.
 *
 * Closed-loop clients (the Fig 7 methodology) cap the queue at the
 * in-flight budget; production traffic does not wait. This bench
 * synthesizes a bursty trace (on/off modulated arrivals, 4x rate in
 * bursts, hot-skewed addresses) and replays it open loop at the same
 * offered rate against the CPU-only and SmartDS tiers: the design with
 * headroom absorbs the bursts; the one running near its wall watches
 * queues (and tails) explode.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "corpus/corpus.h"
#include "mem/memory_system.h"
#include "middletier/cpu_only_server.h"
#include "middletier/smartds_server.h"
#include "net/fabric.h"
#include "storage/storage_server.h"
#include "workload/trace.h"

namespace {

using namespace smartds;
using middletier::Design;

struct Run
{
    double offeredGbps;
    double avgUs;
    double p99Us;
    double p999Us;
    bool finished;
    std::uint64_t events;
};

Run
replay(Design design, double rate_per_second)
{
    sim::Simulator sim;
    net::Fabric fabric(sim);
    mem::MemorySystem memory(sim, "mem", {});
    std::vector<std::unique_ptr<storage::StorageServer>> pool;
    middletier::ServerConfig sc;
    for (int i = 0; i < 6; ++i) {
        pool.push_back(std::make_unique<storage::StorageServer>(
            fabric, "st" + std::to_string(i)));
        sc.storageNodes.push_back(pool.back()->nodeId());
    }

    // CPU-only uses the whole 48-core host; SmartDS uses two of its six
    // ports (4 cores) — the headroom a multi-port card keeps in the same
    // box is exactly what absorbs bursts.
    std::unique_ptr<middletier::MiddleTierServer> server;
    if (design == Design::CpuOnly) {
        sc.cores = 48;
        server = std::make_unique<middletier::CpuOnlyServer>(fabric,
                                                             memory, sc);
    } else {
        sc.cores = 4;
        middletier::SmartDsServer::SmartDsConfig sd;
        sd.ports = 2;
        server = std::make_unique<middletier::SmartDsServer>(
            fabric, memory, sc, sd);
    }

    static const corpus::SyntheticCorpus corpus(2u << 20, 42);
    static const corpus::RatioSampler ratios(corpus, 4096, 1, 256, 7);

    workload::TraceSynthesis synth;
    synth.records = smartds::bench::smoke() ? 8000 : 60000;
    synth.meanRatePerSecond = rate_per_second;
    synth.burstFraction = 0.2;
    const auto trace = workload::synthesizeTrace(synth);

    // Spread the trace's VMs across the tier's front ports (the storage
    // agent routes each VM to one port).
    workload::ClientMetrics metrics;
    std::uint64_t tags = 1;
    std::vector<std::unique_ptr<workload::TraceReplayer>> replayers;
    const unsigned ports = server->frontPorts();
    for (unsigned p = 0; p < ports; ++p) {
        std::vector<workload::TraceRecord> shard;
        for (const auto &rec : trace)
            if (rec.vmId % ports == p)
                shard.push_back(rec);
        workload::TraceReplayer::Config rc;
        rc.target = server->frontNode(p);
        rc.targetQp = server->frontQp(p);
        rc.ratios = &ratios;
        rc.tagCounter = &tags;
        rc.metrics = &metrics;
        replayers.push_back(std::make_unique<workload::TraceReplayer>(
            fabric, "replay" + std::to_string(p), shard, rc));
    }
    sim.run();

    Run r;
    r.offeredGbps = toGbps(rate_per_second * 4096.0);
    r.avgUs = metrics.latency.avgUs();
    r.p99Us = metrics.latency.p99Us();
    r.p999Us = metrics.latency.p999Us();
    r.finished = true;
    for (const auto &rep : replayers)
        r.finished = r.finished && rep->finished();
    r.events = sim.eventsExecuted();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    smartds::bench::Harness harness(argc, argv, "ext_trace_replay");

    std::printf("Extension: open-loop bursty trace replay "
                "(on/off bursts at 4x, hot-skewed addresses)\n\n");

    Table table("Trace replay: latency vs offered rate");
    table.header({"design", "offered(Gbps)", "avg(us)", "p99(us)",
                  "p999(us)"});
    for (double rate : smartds::bench::sweep({0.6e6, 1.0e6, 1.4e6})) {
        for (Design design : {Design::CpuOnly, Design::SmartDs}) {
            const Run r = replay(design, rate);
            harness.noteEvents(r.events);
            table.row({middletier::designName(design),
                       fmt(r.offeredGbps, 1), fmt(r.avgUs, 1),
                       fmt(r.p99Us, 1), fmt(r.p999Us, 1)});
        }
        table.separator();
    }
    table.print();
    table.writeCsv("results/ext_trace_replay.csv");

    std::printf("\nAt rates where bursts exceed a design's ceiling, its "
                "open-loop tails grow by orders of magnitude; provisioning "
                "against traces therefore needs the headroom SmartDS's "
                "higher per-server ceiling provides.\n");
    return 0;
}
