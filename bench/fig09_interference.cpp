/**
 * @file
 * Reproduces Figure 9: middle-tier performance under memory pressure.
 *
 * Paper setup (Section 5.3): 16 dedicated cores run Intel MLC injecting
 * memory requests with a configurable delay; the remaining cores serve
 * 4 KiB write requests. Expected: CPU-only and Acc lose significant
 * throughput and their latencies inflate as pressure rises, while
 * SmartDS-1 is essentially flat — performance isolation without
 * partitioning memory bandwidth or caches — and the MLC itself achieves
 * more bandwidth next to SmartDS than next to the other designs.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "mem/mlc_injector.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

struct Config
{
    const char *label;
    Design design;
    unsigned cores;
};

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "fig09_interference");

    std::printf("Figure 9: performance under different memory pressure\n"
                "(16 dedicated cores run the MLC injector)\n\n");

    const Config configs[] = {
        {"CPU-only", Design::CpuOnly, 32}, // 48 - 16 injector cores
        {"Acc", Design::Accelerator, 2},
        {"SmartDS-1", Design::SmartDs, 2},
    };
    // The "off" point is each design's calm baseline and must survive a
    // smoke trim so the vs-calm column stays defined.
    const std::vector<unsigned> delays = sweep(
        {mem::MlcInjector::offDelay, 800u, 400u, 200u, 100u, 50u, 0u});

    workload::SweepRunner runner(harness.jobs());
    std::vector<std::vector<std::size_t>> indices;
    for (const Config &c : configs) {
        std::vector<std::size_t> per_design;
        for (unsigned delay : delays) {
            auto config = saturating(c.design, c.cores);
            config.mlcDelayCycles = delay;
            config.mlcCores = 16;
            per_design.push_back(runner.add(config));
        }
        indices.push_back(std::move(per_design));
    }
    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    Table table("Fig 9 - write serving under MLC pressure");
    table.header({"design", "mlc-delay", "tput(Gbps)", "vs-calm",
                  "avg(us)", "p99(us)", "p999(us)", "mlc(GB/s)"});

    for (std::size_t ci = 0; ci < indices.size(); ++ci) {
        const Config &c = configs[ci];
        double calm = 0.0;
        for (std::size_t di = 0; di < delays.size(); ++di) {
            const unsigned delay = delays[di];
            const auto &r = runner.result(indices[ci][di]);
            if (delay == mem::MlcInjector::offDelay)
                calm = r.throughputGbps;
            const std::string delay_label =
                delay == mem::MlcInjector::offDelay ? "off"
                                                    : fmt(delay);
            table.row({c.label, delay_label, fmt(r.throughputGbps, 1),
                       fmt(r.throughputGbps / calm, 2),
                       fmt(r.avgLatencyUs, 1), fmt(r.p99LatencyUs, 1),
                       fmt(r.p999LatencyUs, 1), fmt(r.mlcGBps, 1)});
        }
        table.separator();
    }
    table.print();
    table.writeCsv("results/fig09_interference.csv");

    std::printf("\nSmartDS-1's throughput and tails are flat across the "
                "sweep (performance isolation without partitioning, "
                "paper 5.3); CPU-only and Acc degrade and their MLC "
                "neighbours also achieve less bandwidth.\n");
    return 0;
}
