/**
 * @file
 * Reproduces Figure 4: one-sided RDMA forwarding throughput under
 * memory pressure.
 *
 * Paper setup (Section 3.1.2): all 48 cores run Intel MLC injecting
 * dummy memory requests with a configurable inter-request delay; a
 * remote client uses large (4 MiB) one-sided RDMA READ/WRITE through a
 * 100 GbE ConnectX-5 to forward packets through the server's memory. At
 * maximum pressure (delay 0) the paper measures ~46% of the uncontended
 * RDMA throughput.
 *
 * The model: the NIC's DMA engine keeps a bounded window of 4 KiB reads
 * in flight; each read stalls on the memory system's loaded latency, so
 * as MLC utilisation drives the latency curve up, window/latency caps
 * the forwarding rate — the same mechanism as the real DDIO/IIO stall.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/calibration.h"
#include "common/table.h"
#include "mem/memory_system.h"
#include "mem/mlc_injector.h"
#include "pcie/pcie.h"
#include "sim/simulator.h"

namespace {

using namespace smartds;
using namespace smartds::time_literals;
using namespace smartds::size_literals;

struct Point
{
    double rdmaGbps;
    double mlcGBps;
    /** Kernel events this pressure point executed (for bench_perf). */
    std::uint64_t events;
};

Point
run(unsigned delay_cycles)
{
    sim::Simulator sim;
    mem::MemorySystem memory(sim, "mem", {});

    mem::MlcInjector::Config mlc_config;
    mlc_config.cores = calibration::hostLogicalCores; // all cores run MLC
    mem::MlcInjector mlc(memory, mlc_config);
    mlc.setDelayCycles(delay_cycles);

    pcie::PcieLink link(sim, "nic.pcie");
    pcie::DmaEngine::Config dma_config;
    dma_config.chunkBytes = 4096;
    // The RDMA pipeline keeps a ~32 KiB window in flight per direction;
    // calibrated so the unloaded stream saturates the 100 GbE line.
    dma_config.readWindowBytes = calibration::deviceDmaWindowBytes;
    dma_config.writeWindowBytes = calibration::deviceDmaWindowBytes;
    pcie::DmaEngine dma(sim, "nic.dma", &memory,
                        {&link.h2d()}, {&link.d2h()}, dma_config);

    auto *read_flow = memory.createFlow("rdma-read");
    auto *write_flow = memory.createFlow("rdma-write");

    // Forwarding: inbound RDMA WRITEs land in memory, outbound RDMA
    // READs pull them back out; the forwarded rate is the read side,
    // which is the latency-sensitive direction.
    constexpr Bytes message = 4_MiB;
    const Tick warmup = 2 * ticksPerMillisecond;
    const Tick window =
        (smartds::bench::smoke() ? 4 : 20) * ticksPerMillisecond;

    Bytes forwarded = 0;
    bool measuring = false;

    // Self-sustaining message loops: reissue on completion.
    std::function<void()> issue_read = [&]() {
        pcie::DmaEngine::Options options;
        options.memFlow = read_flow;
        options.stallOnMemory = true;
        dma.read(message, options, [&](Tick) {
            if (measuring)
                forwarded += message;
            issue_read();
        });
    };
    std::function<void()> issue_write = [&]() {
        pcie::DmaEngine::Options options;
        options.memFlow = write_flow;
        options.stallOnMemory = false;
        dma.write(message, options, [&](Tick) { issue_write(); });
    };
    issue_read();
    issue_write();

    sim.runUntil(warmup);
    measuring = true;
    const double mlc_start = mlc.deliveredBytes();
    sim.runUntil(warmup + window);
    measuring = false;

    Point p;
    const double seconds = toSeconds(window);
    p.rdmaGbps = toGbps(static_cast<double>(forwarded) / seconds);
    p.mlcGBps = (mlc.deliveredBytes() - mlc_start) / seconds / 1e9;
    p.events = sim.eventsExecuted();
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    smartds::bench::Harness harness(argc, argv, "fig04_memory_pressure");

    std::printf("Figure 4: RDMA throughput at different memory pressure "
                "levels\n"
                "(paper: ~46%% of uncontended throughput at maximum "
                "pressure)\n\n");

    Table table("Fig 4 - RDMA forwarding vs MLC pressure");
    table.header({"mlc-delay(cycles)", "rdma(Gbps)", "mlc(GB/s)",
                  "rdma-vs-idle"});

    const Point idle = run(mem::MlcInjector::offDelay);
    harness.noteEvents(idle.events);
    const std::vector<unsigned> delays =
        smartds::bench::sweep({1600u, 800u, 400u, 200u, 100u, 50u, 20u,
                               0u});
    table.row({"off", fmt(idle.rdmaGbps, 1), fmt(idle.mlcGBps, 1),
               "1.00"});
    double at_max = 1.0;
    for (unsigned delay : delays) {
        const Point p = run(delay);
        harness.noteEvents(p.events);
        const double rel = p.rdmaGbps / idle.rdmaGbps;
        if (delay == 0)
            at_max = rel;
        table.row({fmt(delay), fmt(p.rdmaGbps, 1), fmt(p.mlcGBps, 1),
                   fmt(rel, 2)});
    }
    table.print();
    table.writeCsv("results/fig04_memory_pressure.csv");
    std::printf("\nAt maximum pressure the forwarding stream retains "
                "%.0f%% of its uncontended throughput (paper: ~46%%).\n",
                100.0 * at_max);
    return 0;
}
