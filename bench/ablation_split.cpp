/**
 * @file
 * Ablation: what does the application-aware message split itself buy?
 *
 * The AAMS mechanism is isolated by comparing, at identical engine
 * throughput and identical host hardware:
 *  - SmartDS (split ON): payloads stay in device memory; only 64-byte
 *    headers cross PCIe and touch host memory.
 *  - The accelerator design (split OFF): the same 100 Gbps engine, but
 *    every payload lands in host memory and crosses PCIe to reach it —
 *    which is exactly what "SmartDS without split" degenerates to.
 *
 * The split does not change the single-port peak much (both saturate
 * the port); what it buys is the host-resource footprint — and with it
 * multi-port scaling, which the non-split design cannot have because
 * its NIC PCIe link is already at the wall.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

double
usage(const workload::ExperimentResult &r, const char *key)
{
    const auto it = r.usageGbps.find(key);
    return it == r.usageGbps.end() ? 0.0 : it->second;
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "ablation_split");

    std::printf("Ablation: application-aware message split on/off\n\n");

    workload::SweepRunner runner(harness.jobs());
    const std::size_t split_on_index =
        runner.add(saturating(Design::SmartDs, 2, 1));
    const std::size_t split_off_index =
        runner.add(saturating(Design::Accelerator, 2, 1));
    const std::size_t sd4_index =
        runner.add(saturating(Design::SmartDs, 8, 4));
    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    const auto &split_on = runner.result(split_on_index);
    const auto &split_off = runner.result(split_off_index);

    Table table("AAMS ablation (one port, same engine rate)");
    table.header({"variant", "tput(Gbps)", "avg(us)", "mem(Gbps)",
                  "pcie-total(Gbps)"});
    table.row({"split ON (SmartDS-1)", fmt(split_on.throughputGbps, 1),
               fmt(split_on.avgLatencyUs, 1),
               fmt(usage(split_on, "mem.read") +
                       usage(split_on, "mem.write"),
                   1),
               fmt(usage(split_on, "pcie.smartds.h2d") +
                       usage(split_on, "pcie.smartds.d2h"),
                   1)});
    table.row({"split OFF (payload via host)",
               fmt(split_off.throughputGbps, 1),
               fmt(split_off.avgLatencyUs, 1),
               fmt(usage(split_off, "mem.read") +
                       usage(split_off, "mem.write"),
                   1),
               fmt(usage(split_off, "pcie.nic.h2d") +
                       usage(split_off, "pcie.nic.d2h") +
                       usage(split_off, "pcie.fpga.h2d") +
                       usage(split_off, "pcie.fpga.d2h"),
                   1)});
    table.print();
    table.writeCsv("results/ablation_split.csv");

    // The consequence: port scaling. Without the split every port's
    // traffic crosses the same PCIe link, which caps out immediately.
    const auto &sd4 = runner.result(sd4_index);
    const double pcie_per_port =
        usage(split_off, "pcie.nic.h2d") + usage(split_off, "pcie.nic.d2h");
    const double achievable = toGbps(calibration::pcieGen3x16Bandwidth);
    std::printf("\nWith the split, 4 ports reach %.0f Gbps (%.2fx of one "
                "port).\nWithout it, one port already puts %.0f Gbps on "
                "PCIe; a second port would need %.0f Gbps against the "
                "~%.0f Gbps x16 link: multi-port scaling is impossible.\n",
                sd4.throughputGbps,
                sd4.throughputGbps / split_on.throughputGbps,
                pcie_per_port, 2 * pcie_per_port, 2 * achievable);
    return 0;
}
