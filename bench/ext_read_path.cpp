/**
 * @file
 * Extension: serving read requests (paper Figure 3b).
 *
 * The paper's evaluation concentrates on writes (5x more frequent, and
 * software decompression is ~7x faster than compression per core). This
 * bench completes the picture: read-only and mixed read/write service on
 * the CPU-only and SmartDS tiers. On reads the middle tier fetches the
 * compressed block from storage, decompresses it, and returns the
 * original block to the VM — on SmartDS the decompression engine does
 * this HBM-to-HBM.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "ext_read_path");

    std::printf("Extension: read-path service (Fig 3b)\n\n");

    const std::vector<Design> designs = {Design::CpuOnly, Design::SmartDs};
    const std::vector<double> read_fractions = sweep({0.0, 0.5, 1.0});

    workload::SweepRunner runner(harness.jobs());
    std::vector<std::vector<std::size_t>> indices;
    Tick window = 0;
    for (Design design : designs) {
        std::vector<std::size_t> per_design;
        for (double reads : read_fractions) {
            auto config = design == Design::CpuOnly
                              ? saturating(Design::CpuOnly, 48)
                              : saturating(Design::SmartDs, 2);
            config.readFraction = reads;
            window = config.window;
            per_design.push_back(runner.add(config));
        }
        indices.push_back(std::move(per_design));
    }
    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    Table table("Read/write mixes (saturating load)");
    table.header({"design", "reads", "completed/s (K)", "avg(us)",
                  "p99(us)"});

    for (std::size_t di = 0; di < designs.size(); ++di) {
        for (std::size_t ri = 0; ri < read_fractions.size(); ++ri) {
            const auto &r = runner.result(indices[di][ri]);
            const double kops =
                static_cast<double>(r.requestsCompleted) /
                toSeconds(window) / 1e3;
            table.row({middletier::designName(designs[di]),
                       fmt(100.0 * read_fractions[ri], 0) + "%",
                       fmt(kops, 0), fmt(r.avgLatencyUs, 1),
                       fmt(r.p99LatencyUs, 1)});
        }
        table.separator();
    }
    table.print();
    table.writeCsv("results/ext_read_path.csv");

    std::printf("\nReads cost the CPU-only tier ~1/7th of a write's "
                "compute (decompression is fast), so its read-mostly "
                "service rate rises; SmartDS serves both directions at "
                "port rate with two cores either way.\n");
    return 0;
}
