/**
 * @file
 * Extension: serving read requests (paper Figure 3b).
 *
 * The paper's evaluation concentrates on writes (5x more frequent, and
 * software decompression is ~7x faster than compression per core). This
 * bench completes the picture: read-only and mixed read/write service on
 * the CPU-only and SmartDS tiers. On reads the middle tier fetches the
 * compressed block from storage, decompresses it, and returns the
 * original block to the VM — on SmartDS the decompression engine does
 * this HBM-to-HBM.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

} // namespace

int
main()
{
    std::printf("Extension: read-path service (Fig 3b)\n\n");

    Table table("Read/write mixes (saturating load)");
    table.header({"design", "reads", "completed/s (K)", "avg(us)",
                  "p99(us)"});

    for (Design design : {Design::CpuOnly, Design::SmartDs}) {
        for (double reads : {0.0, 0.5, 1.0}) {
            auto config = design == Design::CpuOnly
                              ? saturating(Design::CpuOnly, 48)
                              : saturating(Design::SmartDs, 2);
            config.readFraction = reads;
            const auto r = workload::runWriteExperiment(config);
            const double kops =
                static_cast<double>(r.requestsCompleted) /
                toSeconds(config.window) / 1e3;
            table.row({middletier::designName(design),
                       fmt(100.0 * reads, 0) + "%", fmt(kops, 0),
                       fmt(r.avgLatencyUs, 1), fmt(r.p99LatencyUs, 1)});
        }
        table.separator();
    }
    table.print();
    table.writeCsv("results/ext_read_path.csv");

    std::printf("\nReads cost the CPU-only tier ~1/7th of a write's "
                "compute (decompression is fast), so its read-mostly "
                "service rate rises; SmartDS serves both directions at "
                "port rate with two cores either way.\n");
    return 0;
}
