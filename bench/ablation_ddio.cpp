/**
 * @file
 * Ablation: DDIO's effect on the accelerator-enhanced design.
 *
 * Extends Figure 8a's w/ vs w/o DDIO contrast: with DDIO the FPGA's
 * payload reads are served from the LLC (no DRAM read bandwidth, no
 * loaded-latency stall); without it every payload is fetched from DRAM.
 * Also shows why DDIO cannot rescue the design under memory pressure:
 * the antagonist thrashes the DDIO ways, so hits evaporate exactly when
 * they would matter (Section 3.2 + Figure 9).
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "mem/mlc_injector.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

double
usage(const workload::ExperimentResult &r, const char *key)
{
    const auto it = r.usageGbps.find(key);
    return it == r.usageGbps.end() ? 0.0 : it->second;
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "ablation_ddio");

    std::printf("Ablation: DDIO on/off for the accelerator design\n\n");

    workload::SweepRunner runner(harness.jobs());
    struct Cell
    {
        bool ddio;
        bool pressure;
        std::size_t index;
    };
    std::vector<Cell> cells;
    for (bool ddio : {true, false}) {
        for (bool pressure : {false, true}) {
            auto config = saturating(Design::Accelerator, 2);
            config.ddio = ddio;
            if (pressure) {
                config.mlcDelayCycles = 0;
                config.mlcCores = 16;
            }
            cells.push_back({ddio, pressure, runner.add(config)});
        }
    }
    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    Table table("Acc with and without DDIO, calm vs MLC pressure");
    table.header({"ddio", "mlc", "tput(Gbps)", "avg(us)", "mem.read",
                  "mem.write"});
    for (const Cell &cell : cells) {
        const auto &r = runner.result(cell.index);
        table.row({cell.ddio ? "on" : "off", cell.pressure ? "max" : "off",
                   fmt(r.throughputGbps, 1), fmt(r.avgLatencyUs, 1),
                   fmt(usage(r, "mem.read"), 1),
                   fmt(usage(r, "mem.write"), 1)});
    }
    table.print();
    table.writeCsv("results/ablation_ddio.csv");

    std::printf("\nDDIO removes the DRAM read stream while calm, but "
                "under MLC pressure the DDIO ways are thrashed and the "
                "design degrades regardless — matching the paper's "
                "argument that DDIO cannot substitute for keeping "
                "payloads off the host (Section 3.2).\n");
    return 0;
}
