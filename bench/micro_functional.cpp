/**
 * @file
 * Functional-datapath microbenchmark: runs the write-serving experiment
 * with real corpus bytes end to end (clients attach blocks, the middle
 * tier runs the real codec, storage keeps stored bytes) and measures the
 * wall-clock speedup of the corpus block codec cache against the
 * cache-off escape hatch. Simulation results must be byte-identical
 * either way — the cache changes how fast the simulator runs, never what
 * it computes — so the CSV this bench writes is independent of the cache
 * setting, `--jobs`, and the build preset.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

workload::ExperimentConfig
functional(Design design, bool cache_on)
{
    workload::ExperimentConfig config;
    config.design = design;
    config.functional = true;
    config.blockCache = cache_on;
    config.cores = 4;
    config.ports = 1;
    // High effort makes the real codec the dominant per-request cost —
    // exactly the regime the block codec cache exists for.
    config.effort = 8;
    config.warmup = (smoke() ? 1 : 2) * ticksPerMillisecond;
    config.window = (smoke() ? 2 : 8) * ticksPerMillisecond;
    return config;
}

/** Exact comparison of everything a run reports (incl. usage probes). */
bool
sameResults(const workload::ExperimentResult &a,
            const workload::ExperimentResult &b)
{
    return a.throughputGbps == b.throughputGbps &&
           a.requestsCompleted == b.requestsCompleted &&
           a.avgLatencyUs == b.avgLatencyUs &&
           a.p50LatencyUs == b.p50LatencyUs &&
           a.p99LatencyUs == b.p99LatencyUs &&
           a.p999LatencyUs == b.p999LatencyUs &&
           a.failover.corruptionsDetected ==
               b.failover.corruptionsDetected &&
           a.failover.readFailovers == b.failover.readFailovers &&
           a.usageGbps == b.usageGbps;
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "micro_functional");

    std::printf("Functional datapath: block codec cache on vs off\n\n");

    const std::vector<Design> designs = {Design::CpuOnly,
                                         Design::Accelerator,
                                         Design::SmartDs};

    // The cache-on and cache-off phases run the same queue through their
    // own SweepRunner so each phase's wall clock is cleanly attributable.
    // Cache-on goes first and pays the one-time table build, so the
    // measured speedup includes that cost honestly.
    workload::SweepRunner on_runner(harness.jobs());
    for (Design d : designs)
        on_runner.add(functional(d, true));
    const Stopwatch on_watch;
    on_runner.run();
    harness.noteSweep(on_runner);
    const double wall_on = on_watch.seconds();

    workload::SweepRunner off_runner(harness.jobs());
    for (Design d : designs)
        off_runner.add(functional(d, false));
    const Stopwatch off_watch;
    off_runner.run();
    harness.noteSweep(off_runner);
    const double wall_off = off_watch.seconds();

    Table table("Functional write serving (effort 8, 4 cores)");
    table.header({"design", "requests", "tput(Gbps)", "avg(us)", "p50(us)",
                  "p99(us)", "p999(us)"});
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const auto &on = on_runner.result(i);
        const auto &off = off_runner.result(i);
        // The cache is an optimisation, not a model change: any visible
        // difference is a bug (tier-1 tests assert the same property).
        if (!sameResults(on, off))
            fatal("cache-on and cache-off results differ for %s",
                  middletier::designName(designs[i]));
        table.row({middletier::designName(designs[i]),
                   fmt(on.requestsCompleted), fmt(on.throughputGbps, 2),
                   fmt(on.avgLatencyUs, 1), fmt(on.p50LatencyUs, 1),
                   fmt(on.p99LatencyUs, 1), fmt(on.p999LatencyUs, 1)});
    }
    table.print();
    table.writeCsv("results/micro_functional.csv");

    const double speedup = wall_on > 0.0 ? wall_off / wall_on : 0.0;
    std::printf("\nwall: cache on %.3f s, cache off %.3f s -> "
                "speedup %.2fx\n",
                wall_on, wall_off, speedup);

    // A second bench_perf record (besides the Harness events/sec line)
    // tracking the cache's wall-clock win PR-over-PR. perf_diff.py keys
    // on events_per_sec records and skips this one.
    char line[256];
    std::snprintf(line, sizeof(line),
                  "{\"bench\":\"micro_functional\",\"metric\":"
                  "\"cache_speedup\",\"jobs\":%u,\"smoke\":%s,"
                  "\"wall_on_s\":%.3f,\"wall_off_s\":%.3f,"
                  "\"speedup\":%.2f,\"unix_time\":%lld}",
                  harness.jobs(), smoke() ? "true" : "false", wall_on,
                  wall_off, speedup, unixTime());
    if (!appendLineAtomic("results/bench_perf.jsonl", line))
        warn("could not append to results/bench_perf.jsonl");
    std::printf("[bench_perf] %s\n", line);
    return 0;
}
