/**
 * @file
 * Reproduces Figure 8: host memory bandwidth (8a) and CPU PCIe link
 * bandwidth (8b) occupied by each design while serving write requests.
 *
 * Expected shapes (paper Section 5.2):
 *  - CPU-only consumes nearly equal memory read and write bandwidth,
 *    growing with core count; its NIC's H2D PCIe direction approaches
 *    the PCIe 3.0 x16 achievable bandwidth at peak.
 *  - Acc w/ DDIO consumes mostly memory *write* bandwidth (NIC-written
 *    payloads spill from the DDIO ways; the FPGA's reads hit the LLC);
 *    disabling DDIO makes read bandwidth jump. Its NIC PCIe link
 *    saturates and the FPGA link carries the payload twice more.
 *  - SmartDS occupies only ~2% of PCIe and almost no memory bandwidth:
 *    payloads never leave the card.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

double
usage(const workload::ExperimentResult &r, const char *key)
{
    const auto it = r.usageGbps.find(key);
    return it == r.usageGbps.end() ? 0.0 : it->second;
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "fig08_resource_usage");

    std::printf("Figure 8: host memory and CPU PCIe link bandwidth "
                "usage\n\n");

    workload::SweepRunner runner(harness.jobs());

    std::vector<std::pair<unsigned, std::size_t>> cpu_rows;
    for (unsigned cores : sweep({8u, 16u, 24u, 32u, 48u}))
        cpu_rows.emplace_back(
            cores, runner.add(saturating(Design::CpuOnly, cores)));

    struct AccRow
    {
        std::string label;
        unsigned cores;
        std::size_t index;
    };
    std::vector<std::vector<AccRow>> acc_groups;
    for (bool ddio : {true, false}) {
        std::vector<AccRow> group;
        for (unsigned cores : sweep({1u, 2u, 4u})) {
            auto config = saturating(Design::Accelerator, cores);
            config.ddio = ddio;
            group.push_back({ddio ? "Acc w/DDIO" : "Acc w/oDDIO", cores,
                             runner.add(config)});
        }
        acc_groups.push_back(std::move(group));
    }

    const std::size_t sd_index =
        runner.add(saturating(Design::SmartDs, 2));

    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    Table mem("Fig 8a - host memory bandwidth occupation (Gbps)");
    mem.header({"design", "cores", "tput(Gbps)", "mem.read", "mem.write"});
    Table pcie("Fig 8b - CPU PCIe link bandwidth (Gbps)");
    pcie.header({"design", "cores", "tput(Gbps)", "nic.h2d", "nic.d2h",
                 "fpga/sd.h2d", "fpga/sd.d2h"});

    for (const auto &[cores, index] : cpu_rows) {
        const auto &r = runner.result(index);
        mem.row({"CPU-only", fmt(cores), fmt(r.throughputGbps, 1),
                 fmt(usage(r, "mem.read"), 1),
                 fmt(usage(r, "mem.write"), 1)});
        pcie.row({"CPU-only", fmt(cores), fmt(r.throughputGbps, 1),
                  fmt(usage(r, "pcie.nic.h2d"), 1),
                  fmt(usage(r, "pcie.nic.d2h"), 1), "-", "-"});
    }
    mem.separator();
    pcie.separator();

    for (const auto &group : acc_groups) {
        for (const AccRow &row : group) {
            const auto &r = runner.result(row.index);
            mem.row({row.label, fmt(row.cores), fmt(r.throughputGbps, 1),
                     fmt(usage(r, "mem.read"), 1),
                     fmt(usage(r, "mem.write"), 1)});
            pcie.row({row.label, fmt(row.cores), fmt(r.throughputGbps, 1),
                      fmt(usage(r, "pcie.nic.h2d"), 1),
                      fmt(usage(r, "pcie.nic.d2h"), 1),
                      fmt(usage(r, "pcie.fpga.h2d"), 1),
                      fmt(usage(r, "pcie.fpga.d2h"), 1)});
        }
        mem.separator();
        pcie.separator();
    }

    {
        const auto &r = runner.result(sd_index);
        mem.row({"SmartDS-1", "2", fmt(r.throughputGbps, 1),
                 fmt(usage(r, "mem.read"), 1),
                 fmt(usage(r, "mem.write"), 1)});
        pcie.row({"SmartDS-1", "2", fmt(r.throughputGbps, 1), "-", "-",
                  fmt(usage(r, "pcie.smartds.h2d"), 1),
                  fmt(usage(r, "pcie.smartds.d2h"), 1)});
    }

    mem.print();
    mem.writeCsv("results/fig08a_memory.csv");
    std::printf("\n");
    pcie.print();
    pcie.writeCsv("results/fig08b_pcie.csv");

    std::printf("\nSmartDS occupies ~2%% of one PCIe 3.0 x16 direction "
                "(achievable ~104 Gbps) at full port rate; CPU-only's "
                "NIC H2D approaches the PCIe limit at peak (paper Fig "
                "8b).\n");
    return 0;
}
