/**
 * @file
 * Ablation: replication factor and compression effort.
 *
 * The paper fixes 3-way replication and leaves compression effort as a
 * per-service policy decision (Section 2.2.1: more idle CPU or more
 * latency tolerance => spend more compression time for better ratio).
 * This sweep quantifies both knobs on SmartDS-1 and CPU-only:
 * replication sets the TX amplification that caps SmartDS's per-port
 * intake, while effort trades middle-tier compute (CPU-only) against
 * storage/network bytes.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

} // namespace

int
main()
{
    std::printf("Ablation: replication factor and compression effort\n\n");

    Table rep("Replication-factor sweep (SmartDS-1, effort 1)");
    rep.header({"replicas", "tput(Gbps)", "avg(us)", "ratio"});
    for (unsigned r : {1u, 2u, 3u}) {
        auto config = saturating(Design::SmartDs, 2, 1);
        config.replication = r;
        const auto result = workload::runWriteExperiment(config);
        rep.row({fmt(r), fmt(result.throughputGbps, 1),
                 fmt(result.avgLatencyUs, 1),
                 fmt(result.meanCompressionRatio, 3)});
    }
    rep.print();
    rep.writeCsv("results/ablation_replication.csv");
    std::printf("\n");

    Table eff("Compression-effort sweep (3-way replication)");
    eff.header({"design", "effort", "tput(Gbps)", "avg(us)", "ratio",
                "stored-bytes/4KiB"});
    for (int effort : {1, 3, 6}) {
        for (Design d : {Design::CpuOnly, Design::SmartDs}) {
            auto config = d == Design::CpuOnly
                              ? saturating(Design::CpuOnly, 48)
                              : saturating(Design::SmartDs, 2, 1);
            config.effort = effort;
            const auto r = workload::runWriteExperiment(config);
            eff.row({middletier::designName(d), fmt(effort),
                     fmt(r.throughputGbps, 1), fmt(r.avgLatencyUs, 1),
                     fmt(r.meanCompressionRatio, 3),
                     fmt(r.meanCompressionRatio * 4096.0, 0)});
        }
    }
    eff.print();
    eff.writeCsv("results/ablation_effort.csv");

    std::printf("\nHigher effort shrinks stored bytes (and SmartDS's TX "
                "amplification, raising its intake ceiling) but costs "
                "CPU-only software throughput; SmartDS's hardware "
                "engines absorb the deeper match search.\n");
    return 0;
}
