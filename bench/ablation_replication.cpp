/**
 * @file
 * Ablation: replication factor and compression effort.
 *
 * The paper fixes 3-way replication and leaves compression effort as a
 * per-service policy decision (Section 2.2.1: more idle CPU or more
 * latency tolerance => spend more compression time for better ratio).
 * This sweep quantifies both knobs on SmartDS-1 and CPU-only:
 * replication sets the TX amplification that caps SmartDS's per-port
 * intake, while effort trades middle-tier compute (CPU-only) against
 * storage/network bytes.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "ablation_replication");

    std::printf("Ablation: replication factor and compression effort\n\n");

    const std::vector<unsigned> replicas = sweep({1u, 2u, 3u});
    const std::vector<int> efforts = sweep({1, 3, 6});
    const std::vector<Design> designs = {Design::CpuOnly, Design::SmartDs};

    workload::SweepRunner runner(harness.jobs());
    std::vector<std::size_t> rep_indices;
    for (unsigned r : replicas) {
        auto config = saturating(Design::SmartDs, 2, 1);
        config.replication = r;
        rep_indices.push_back(runner.add(config));
    }
    std::vector<std::size_t> eff_indices;
    for (int effort : efforts) {
        for (Design d : designs) {
            auto config = d == Design::CpuOnly
                              ? saturating(Design::CpuOnly, 48)
                              : saturating(Design::SmartDs, 2, 1);
            config.effort = effort;
            eff_indices.push_back(runner.add(config));
        }
    }
    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    Table rep("Replication-factor sweep (SmartDS-1, effort 1)");
    rep.header({"replicas", "tput(Gbps)", "avg(us)", "ratio"});
    for (std::size_t i = 0; i < replicas.size(); ++i) {
        const auto &result = runner.result(rep_indices[i]);
        rep.row({fmt(replicas[i]), fmt(result.throughputGbps, 1),
                 fmt(result.avgLatencyUs, 1),
                 fmt(result.meanCompressionRatio, 3)});
    }
    rep.print();
    rep.writeCsv("results/ablation_replication.csv");
    std::printf("\n");

    Table eff("Compression-effort sweep (3-way replication)");
    eff.header({"design", "effort", "tput(Gbps)", "avg(us)", "ratio",
                "stored-bytes/4KiB"});
    std::size_t cell = 0;
    for (int effort : efforts) {
        for (Design d : designs) {
            const auto &r = runner.result(eff_indices[cell++]);
            eff.row({middletier::designName(d), fmt(effort),
                     fmt(r.throughputGbps, 1), fmt(r.avgLatencyUs, 1),
                     fmt(r.meanCompressionRatio, 3),
                     fmt(r.meanCompressionRatio * 4096.0, 0)});
        }
    }
    eff.print();
    eff.writeCsv("results/ablation_effort.csv");

    std::printf("\nHigher effort shrinks stored bytes (and SmartDS's TX "
                "amplification, raising its intake ceiling) but costs "
                "CPU-only software throughput; SmartDS's hardware "
                "engines absorb the deeper match search.\n");
    return 0;
}
