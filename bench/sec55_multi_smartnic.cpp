/**
 * @file
 * Reproduces Section 5.5: multiple SmartNICs per server.
 *
 * Two parts:
 *  1. A simulated cross-check that two SmartDS cards in one host scale
 *     as linearly as ports on one card do (the host-side resources they
 *     share — memory bandwidth, PCIe switch root — are nowhere near
 *     saturation).
 *  2. The fleet-sizing arithmetic of the paper: per-card measurements
 *     feed the scale-up model, which checks every host budget and
 *     reports the achievable aggregate (2.8 Tbps with 8 cards) and the
 *     reduction in middle-tier servers versus CPU-only (51.6x).
 */

#include <cstdio>

#include "bench_common.h"
#include "cluster/scale_up.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

double
usage(const workload::ExperimentResult &r, const char *key)
{
    const auto it = r.usageGbps.find(key);
    return it == r.usageGbps.end() ? 0.0 : it->second;
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "sec55_multi_smartnic");

    std::printf("Section 5.5: multiple SmartNICs per server\n\n");

    workload::SweepRunner runner(harness.jobs());
    const std::size_t one_card_index =
        runner.add(saturating(Design::SmartDs, 12, 6));
    auto two_config = saturating(Design::SmartDs, 4, 2);
    two_config.cards = 2;
    const std::size_t two_cards_index = runner.add(two_config);
    const std::size_t one_of_two_index =
        runner.add(saturating(Design::SmartDs, 4, 2));
    const std::size_t cpu_index =
        runner.add(saturating(Design::CpuOnly, 48));
    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    // --- Part 1: measure one card (SmartDS-6) in simulation -------------
    const auto &one_card = runner.result(one_card_index);
    const double per_card_gbps = one_card.throughputGbps;
    const double host_mem_gbps = usage(one_card, "mem.read") +
                                 usage(one_card, "mem.write");
    const double pcie_gbps = usage(one_card, "pcie.smartds.h2d") +
                             usage(one_card, "pcie.smartds.d2h");

    std::printf("Measured SmartDS-6 card: %.1f Gbps storage traffic, "
                "%.1f Gbps host memory, %.1f Gbps PCIe\n"
                "(paper: 348 Gbps, 49 Gbps, 12.4 Gbps)\n\n",
                per_card_gbps, host_mem_gbps, pcie_gbps);

    // Simulated cross-check: two full cards behind one PCIe switch scale
    // as linearly as ports on one card.
    const auto &two_cards = runner.result(two_cards_index);
    const auto &one_of_two = runner.result(one_of_two_index);
    std::printf("Simulated cross-check: 2 cards x 2 ports = %.1f Gbps vs "
                "1 card x 2 ports = %.1f Gbps (%.2fx)\n\n",
                two_cards.throughputGbps, one_of_two.throughputGbps,
                two_cards.throughputGbps / one_of_two.throughputGbps);

    const auto &cpu = runner.result(cpu_index);

    // --- Part 2: fleet arithmetic over the measured card ----------------
    cluster::ScaleUpInputs inputs;
    inputs.perCardGbps = per_card_gbps;
    inputs.hostMemoryPerCardGbps = host_mem_gbps;
    inputs.pciePerCardGbps = pcie_gbps;
    inputs.cpuOnlyGbps = cpu.throughputGbps;
    inputs.hostCores = 128; // "if the server has enough CPU cores" (5.5)

    Table table("Sec 5.5 - SmartDS cards per 4U server");
    table.header({"cards", "total(Gbps)", "host-mem(Gbps)",
                  "pcie/switch(Gbps)", "cores", "feasible",
                  "server-reduction"});
    for (unsigned cards : {1u, 2u, 4u, 8u}) {
        const auto r = cluster::evaluateScaleUp(inputs, cards);
        const bool ok =
            r.memoryFeasible && r.pcieFeasible && r.coresFeasible;
        table.row({fmt(cards), fmt(r.totalGbps, 0),
                   fmt(r.hostMemoryGbps, 0),
                   fmt(r.pciePerSwitchGbps, 1), fmt(r.coresNeeded),
                   ok ? "yes" : "no", fmt(r.serverReduction, 1) + "x"});
    }
    table.print();
    table.writeCsv("results/sec55_scaleup.csv");

    const auto eight = cluster::evaluateScaleUp(inputs, 8);
    std::printf("\nEight cards: %.2f Tbps aggregate, replacing %.1f "
                "CPU-only middle-tier servers (paper: 2.8 Tbps, 51.6x).\n"
                "On the stock 48-core testbed host the core budget "
                "allows %u cards (the paper notes scale-up needs "
                "\"enough CPU cores\": 2 per port).\n",
                eight.totalGbps / 1000.0, eight.serverReduction,
                cluster::maxFeasibleCards([&] {
                    auto stock = inputs;
                    stock.hostCores = 48;
                    return stock;
                }()));
    return 0;
}
