/**
 * @file
 * Microbenchmarks of the simulation kernel itself (google-benchmark):
 * event throughput, coroutine switch cost, resource-model overheads.
 * Useful for judging how much simulated time a given experiment budget
 * buys — the figure sweeps execute millions of these primitives.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_common.h"
#include "middletier/protocol.h"
#include "sim/awaitables.h"
#include "sim/bandwidth_server.h"
#include "sim/fair_share.h"
#include "sim/process.h"
#include "sim/simulator.h"

namespace {

/** Global operator-new calls (see the counting allocator below). */
// simlint: allow(mutable-global): operator new has no owning object to
// thread a counter through; atomic, bench-only telemetry
std::atomic<std::uint64_t> newCalls{0};

/** Kernel events the benchmark bodies executed (for bench_perf). */
// simlint: allow(mutable-global): google-benchmark bodies are free
// functions with no way to reach the Harness in main(); atomic,
// bench-only telemetry accumulated for one noteEvents() call at exit
std::atomic<std::uint64_t> simEvents{0};

} // namespace

// Counting global allocator: the header-encode benchmarks report an
// allocations-per-encode counter, which is what encodeShared()'s memo
// exists to shrink. One relaxed increment per allocation — noise for the
// timing numbers, exact for the counter.
void *
operator new(std::size_t size)
{
    newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
// simlint: allow(naked-new): counting-allocator definition, not an allocation
operator new[](std::size_t size)
{
    newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace smartds;
using namespace smartds::time_literals;

void
eventScheduleAndRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            sim.schedule(static_cast<Tick>(i) * 10_ns,
                         [&sink]() { ++sink; });
        sim.run();
        simEvents.fetch_add(sim.eventsExecuted(),
                            std::memory_order_relaxed);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}

void
coroutineDelayChain(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int sink = 0;
        for (int p = 0; p < 50; ++p) {
            sim::spawn(sim, [](sim::Simulator &s, int *out) -> sim::Process {
                for (int i = 0; i < 20; ++i)
                    co_await sim::delay(s, 100_ns);
                ++*out;
            }(sim, &sink));
        }
        sim.run();
        simEvents.fetch_add(sim.eventsExecuted(),
                            std::memory_order_relaxed);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 50 * 20);
}

void
bandwidthServerTransfers(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        sim::BandwidthServer server(sim, "s", 12.5e9);
        int done = 0;
        for (int i = 0; i < 1000; ++i)
            server.transfer(4096, [&done]() { ++done; });
        sim.run();
        simEvents.fetch_add(sim.eventsExecuted(),
                            std::memory_order_relaxed);
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}

void
fairShareContendedTransfers(benchmark::State &state)
{
    const auto flows = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        sim::FairShareResource res(sim, "mem", 120e9);
        int done = 0;
        std::vector<sim::FairShareResource::Flow *> fs;
        for (std::size_t f = 0; f < flows; ++f)
            fs.push_back(res.createFlow("f" + std::to_string(f)));
        for (int i = 0; i < 200; ++i)
            fs[static_cast<std::size_t>(i) % flows]->transfer(
                4096, [&done]() { ++done; });
        sim.run();
        simEvents.fetch_add(sim.eventsExecuted(),
                            std::memory_order_relaxed);
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 200);
}

/**
 * StorageHeader::encodeShared() allocation delta: with identical field
 * values (the replication fan-out case — one header re-encoded per
 * replica) the thread-local memo hands the same buffer back and the
 * allocs/encode counter sits near zero; with a varying tag every encode
 * misses the memo and pays the shared-vector allocations.
 */
void
headerEncodeShared(benchmark::State &state)
{
    const bool vary = state.range(0) != 0;
    middletier::StorageHeader hdr;
    hdr.payloadSize = 4096;
    hdr.blockChecksum = 0x1234;
    std::uint64_t tag = 0;
    std::uint64_t iters = 0;
    const std::uint64_t before = newCalls.load();
    for (auto _ : state) {
        hdr.tag = vary ? ++tag : 42;
        auto buf = hdr.encodeShared();
        benchmark::DoNotOptimize(buf);
        ++iters;
    }
    const std::uint64_t after = newCalls.load();
    state.counters["allocs_per_encode"] = benchmark::Counter(
        iters > 0 ? static_cast<double>(after - before) /
                        static_cast<double>(iters)
                  : 0.0);
    state.SetItemsProcessed(static_cast<std::int64_t>(iters));
}

/** Stack-array encode(): the zero-allocation baseline. */
void
headerEncodeArray(benchmark::State &state)
{
    middletier::StorageHeader hdr;
    hdr.payloadSize = 4096;
    hdr.blockChecksum = 0x1234;
    std::uint64_t iters = 0;
    const std::uint64_t before = newCalls.load();
    for (auto _ : state) {
        hdr.tag = ++iters;
        auto buf = hdr.encode();
        benchmark::DoNotOptimize(buf);
    }
    const std::uint64_t after = newCalls.load();
    state.counters["allocs_per_encode"] = benchmark::Counter(
        iters > 0 ? static_cast<double>(after - before) /
                        static_cast<double>(iters)
                  : 0.0);
    state.SetItemsProcessed(static_cast<std::int64_t>(iters));
}

} // namespace

BENCHMARK(eventScheduleAndRun);
BENCHMARK(coroutineDelayChain);
BENCHMARK(bandwidthServerTransfers);
BENCHMARK(fairShareContendedTransfers)->Arg(2)->Arg(8)->Arg(32);
BENCHMARK(headerEncodeShared)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("vary");
BENCHMARK(headerEncodeArray);

int
main(int argc, char **argv)
{
    smartds::bench::Harness harness(argc, argv, "micro_sim");
    // Under --smoke, cap each benchmark's measuring time so the whole
    // binary finishes in seconds; explicit user flags still win because
    // google-benchmark takes the last occurrence.
    std::string min_time = "--benchmark_min_time=0.01";
    std::vector<char *> args(argv, argv + argc);
    if (harness.smoke())
        args.insert(args.begin() + 1, min_time.data());
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    harness.noteEvents(simEvents.load(std::memory_order_relaxed));
    return 0;
}
