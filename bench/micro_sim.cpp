/**
 * @file
 * Microbenchmarks of the simulation kernel itself (google-benchmark):
 * event throughput, coroutine switch cost, resource-model overheads.
 * Useful for judging how much simulated time a given experiment budget
 * buys — the figure sweeps execute millions of these primitives.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/awaitables.h"
#include "sim/bandwidth_server.h"
#include "sim/fair_share.h"
#include "sim/process.h"
#include "sim/simulator.h"

namespace {

using namespace smartds;
using namespace smartds::time_literals;

void
eventScheduleAndRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            sim.schedule(static_cast<Tick>(i) * 10_ns,
                         [&sink]() { ++sink; });
        sim.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}

void
coroutineDelayChain(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int sink = 0;
        for (int p = 0; p < 50; ++p) {
            sim::spawn(sim, [](sim::Simulator &s, int *out) -> sim::Process {
                for (int i = 0; i < 20; ++i)
                    co_await sim::delay(s, 100_ns);
                ++*out;
            }(sim, &sink));
        }
        sim.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 50 * 20);
}

void
bandwidthServerTransfers(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        sim::BandwidthServer server(sim, "s", 12.5e9);
        int done = 0;
        for (int i = 0; i < 1000; ++i)
            server.transfer(4096, [&done]() { ++done; });
        sim.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}

void
fairShareContendedTransfers(benchmark::State &state)
{
    const auto flows = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        sim::FairShareResource res(sim, "mem", 120e9);
        int done = 0;
        std::vector<sim::FairShareResource::Flow *> fs;
        for (std::size_t f = 0; f < flows; ++f)
            fs.push_back(res.createFlow("f" + std::to_string(f)));
        for (int i = 0; i < 200; ++i)
            fs[static_cast<std::size_t>(i) % flows]->transfer(
                4096, [&done]() { ++done; });
        sim.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 200);
}

} // namespace

BENCHMARK(eventScheduleAndRun);
BENCHMARK(coroutineDelayChain);
BENCHMARK(bandwidthServerTransfers);
BENCHMARK(fairShareContendedTransfers)->Arg(2)->Arg(8)->Arg(32);

int
main(int argc, char **argv)
{
    smartds::bench::Harness harness(argc, argv, "micro_sim");
    // Under --smoke, cap each benchmark's measuring time so the whole
    // binary finishes in seconds; explicit user flags still win because
    // google-benchmark takes the last occurrence.
    std::string min_time = "--benchmark_min_time=0.01";
    std::vector<char *> args(argv, argv + argc);
    if (harness.smoke())
        args.insert(args.begin() + 1, min_time.data());
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
