/**
 * @file
 * Extension: thousand-node cluster runs on the parallel PDES kernel.
 *
 * The paper's testbed stops at a handful of storage servers; production
 * disaggregated pools are thousands of nodes. This bench sweeps the
 * storage pool from 100 to 2000 nodes and, at every size, runs the same
 * experiment on 1/2/4/8 executor shards over the auto-derived
 * timing-domain partition (middle tier, clients, storage spread by
 * rack). Two questions, two columns:
 *
 *  - does sharding pay? events/sec per point, plus the speedup of each
 *    shard count against the serial run of the same topology — on a
 *    multi-core host the domains advance concurrently inside each
 *    conservative lookahead round;
 *  - does sharding lie? every sharded run must reproduce the serial
 *    run's event stream *exactly*. The bench hashes each run's
 *    dispatched events (the dsan machinery) and fatals on the first
 *    shard count whose state hash or request count diverges — the
 *    PDES determinism bar, enforced at 2000 nodes, not just in unit
 *    tests.
 *
 * Wall-clock numbers are hardware-dependent telemetry (a 1-core CI
 * container serializes the shards and reports speedup ~1x, and the
 * bench prints that caveat); the equality assertion is the part that
 * must hold everywhere.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "workload/sweep_runner.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using namespace smartds::time_literals;
using middletier::Design;

struct Point
{
    unsigned nodes;
    unsigned shards;
    unsigned domains;
    double throughputGbps;
    std::uint64_t requests;
    std::uint64_t events;
    std::uint64_t crossEvents;
    std::uint32_t stateHash;
    double wallSeconds;
};

workload::ExperimentConfig
clusterConfig(unsigned nodes)
{
    auto config = saturating(Design::SmartDs, 2);
    config.storageServers = nodes;
    // ~25 storage nodes per rack; the auto partition turns racks into
    // timing domains (capped at 16 storage domains + tier + clients).
    config.failureDomains = std::max(4u, nodes / 25);
    // Big pools amortize construction over a shorter measured window —
    // the point is topology scale, not converged throughput.
    config.warmup = (smoke() ? 1 : 2) * ticksPerMillisecond;
    config.window = (smoke() ? 2 : 6) * ticksPerMillisecond;
    // Always hash the event stream: the per-point equality assertion
    // below compares sharded runs against the serial baseline by state
    // hash, in release builds too. Uniform overhead across shard
    // counts, so the speedup column is unaffected.
    config.dsan = true;
    config.timingDomains = 0; // auto partition from the topology
    return config;
}

Point
runPoint(const Harness &harness, unsigned nodes, unsigned shards)
{
    auto config = clusterConfig(nodes);
    config.shards = shards;
    const Stopwatch watch;
    const auto r = workload::runWriteExperiment(config);
    Point p;
    p.nodes = nodes;
    p.shards = shards;
    p.domains = r.timingDomains;
    p.throughputGbps = r.throughputGbps;
    p.requests = r.requestsCompleted;
    p.events = r.eventsExecuted;
    p.crossEvents = r.crossChannelEvents;
    p.stateHash = r.stateHash;
    p.wallSeconds = watch.seconds();
    harness.noteResult(r);
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "ext_scale_cluster");

    std::printf("Extension: cluster scale on the PDES kernel "
                "(SmartDS, auto timing domains, shards 1/2/4/8)\n\n");

    const unsigned cores = workload::SweepRunner::defaultJobs();
    if (cores < 4)
        std::printf("note: %u hardware thread(s) — shards serialize, "
                    "expect speedup ~1x; the byte-identical check below "
                    "is hardware-independent\n\n",
                    cores);

    const std::vector<unsigned> node_counts =
        sweep({100u, 500u, 1000u, 2000u});
    const std::vector<unsigned> shard_counts = {1u, 2u, 4u, 8u};

    Table table("Cluster scale: events/sec and shard speedup");
    table.header({"nodes", "domains", "shards", "events", "cross",
                  "wall(s)", "Mev/s", "speedup", "hash"});

    char buf[32];
    for (const unsigned nodes : node_counts) {
        double serial_wall = 0.0;
        Point baseline{};
        for (const unsigned shards : shard_counts) {
            const Point p = runPoint(harness, nodes, shards);
            if (shards == 1) {
                serial_wall = p.wallSeconds;
                baseline = p;
            } else if (p.stateHash != baseline.stateHash ||
                       p.requests != baseline.requests ||
                       p.events != baseline.events) {
                fatal("shards=%u diverged from the serial run at %u "
                      "nodes: hash %08x vs %08x, %llu vs %llu requests "
                      "— the PDES merge is not shard-count invariant",
                      shards, nodes, p.stateHash, baseline.stateHash,
                      static_cast<unsigned long long>(p.requests),
                      static_cast<unsigned long long>(baseline.requests));
            }
            const double evps =
                p.wallSeconds > 0.0
                    ? static_cast<double>(p.events) / p.wallSeconds
                    : 0.0;
            const double speedup =
                p.wallSeconds > 0.0 ? serial_wall / p.wallSeconds : 0.0;
            std::snprintf(buf, sizeof(buf), "%08x", p.stateHash);
            table.row({std::to_string(p.nodes),
                       std::to_string(p.domains),
                       std::to_string(p.shards),
                       std::to_string(p.events),
                       std::to_string(p.crossEvents), fmt(p.wallSeconds, 2),
                       fmt(evps / 1e6, 2), fmt(speedup, 2), buf});
        }
        table.separator();
    }
    table.print();
    table.writeCsv("results/ext_scale_cluster.csv");

    std::printf("\nEvery sharded run reproduced its serial baseline's "
                "event-stream hash byte for byte; on multi-core hosts "
                "the shard columns turn that equivalence into wall-clock "
                "speedup for thousand-node topologies.\n");
    return 0;
}
