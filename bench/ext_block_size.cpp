/**
 * @file
 * Extension: sensitivity of AAMS to the I/O block size.
 *
 * SmartDS's premise (Section 4) is that "the I/O size in the middle tier
 * is relatively large (e.g., 4 KB): the majority of the network message
 * needs heavy computation, while only a small part (e.g., 64 bytes)
 * requires flexible processing." This sweep quantifies that premise: as
 * blocks shrink toward the header size, per-request software costs and
 * header DMA dominate and the split's advantage narrows; as blocks grow,
 * the CPU-only tier's compression wall steepens and SmartDS's advantage
 * widens until the line rate caps both.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "ext_block_size");

    std::printf("Extension: block-size sensitivity of the message "
                "split\n\n");

    const std::vector<Bytes> blocks = sweep(
        {Bytes{512}, Bytes{1024}, Bytes{4096}, Bytes{16384},
         Bytes{65536}});

    workload::SweepRunner runner(harness.jobs());
    struct RowIndices
    {
        std::size_t cpu;
        std::size_t sd2;
        std::size_t sd8;
    };
    std::vector<RowIndices> indices;
    for (Bytes block : blocks) {
        auto cpu_config = saturating(Design::CpuOnly, 48);
        cpu_config.blockBytes = block;

        // Small blocks need proportionally more in-flight requests to
        // keep the pipeline full: scale workers and clients with the
        // message rate so the sweep measures the architecture, not the
        // pipeline depth.
        const unsigned workers =
            block < 4096 ? static_cast<unsigned>(128 * 4096 / block) : 128;
        auto sd2_config = saturating(Design::SmartDs, 2);
        sd2_config.blockBytes = block;
        sd2_config.workersPerPort = workers;
        sd2_config.clients = block < 4096 ? 48 : 0;

        // Small blocks make the 2-core header budget the bottleneck;
        // show how many cores buy the message rate back.
        auto sd8_config = sd2_config;
        sd8_config.cores = 8;

        indices.push_back({runner.add(cpu_config), runner.add(sd2_config),
                           runner.add(sd8_config)});
    }
    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    Table table("Header split vs block size (saturating load)");
    table.header({"block", "CPU-only-48", "SmartDS-1/2c", "SmartDS-1/8c",
                  "best-vs-CPU", "SmartDS hdr-PCIe"});

    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const Bytes block = blocks[i];
        const auto &cpu = runner.result(indices[i].cpu);
        const auto &sd2 = runner.result(indices[i].sd2);
        const auto &sd8 = runner.result(indices[i].sd8);

        const auto it = sd2.usageGbps.find("pcie.smartds.h2d");
        const double hdr_pcie =
            it == sd2.usageGbps.end() ? 0.0 : it->second;
        const double best =
            std::max(sd2.throughputGbps, sd8.throughputGbps);
        std::string label = block >= 1024
                                ? fmt(block / 1024) + " KiB"
                                : fmt(block) + " B";
        table.row({label, fmt(cpu.throughputGbps, 1),
                   fmt(sd2.throughputGbps, 1), fmt(sd8.throughputGbps, 1),
                   fmt(best / cpu.throughputGbps, 2) + "x",
                   fmt(hdr_pcie, 2)});
    }
    table.print();
    table.writeCsv("results/ext_block_size.csv");

    std::printf(
        "\nHeader handling is deliberately not offloaded (that is the "
        "flexible part), so at small blocks the message rate is bound by "
        "host cores on every design: two cores no longer suffice for "
        "SmartDS, and the split's advantage narrows toward parity even "
        "with more cores. At the middle tier's actual 4+ KiB blocks the "
        "payload dominates and two cores per port drive the line - the "
        "regime the paper targets (Section 4).\n");
    return 0;
}
