/**
 * @file
 * Extension: skewed YCSB-style reads + the middle-tier hot-block cache.
 *
 * Cloud block traffic is Zipfian: a small hot set absorbs most reads.
 * This bench sweeps the address skew (exact rejection-inversion Zipf
 * theta) and the middle tier's read-cache capacity across designs, and
 * reports the cache hit rate, the tail latency, and the plain bytes the
 * cache served locally (fetch round trips the fabric never saw). On
 * SmartDS and BF2 the cache lives in device memory — capacity charged
 * against the HBM budget, hits charged to a device-DRAM flow — while the
 * CPU-only tier keeps it in host DRAM.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using middletier::Design;

workload::ExperimentConfig
base(Design design)
{
    auto config = design == Design::CpuOnly  ? moderate(Design::CpuOnly, 16)
                  : design == Design::Bf2    ? moderate(Design::Bf2, 8)
                                             : moderate(Design::SmartDs, 2);
    config.readFraction = 0.7;
    // A small virtual disk so the capacity sweep spans miss-dominated to
    // fully resident: 64 MiB = 16384 distinct 4 KiB blocks per client.
    config.virtualDiskBytes = mebibytes(64);
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "ext_skewed_cache");

    std::printf("Extension: Zipf-skewed reads vs hot-block cache\n\n");

    const std::vector<Design> designs = {Design::CpuOnly, Design::Bf2,
                                         Design::SmartDs};
    const std::vector<double> thetas = sweep({0.6, 0.99, 1.2});
    const std::vector<Bytes> capacities =
        sweep({mebibytes(1), mebibytes(16), mebibytes(64)});

    workload::SweepRunner runner(harness.jobs());
    struct Row
    {
        Design design;
        double theta;
        Bytes capacity; ///< 0 = cache off (the baseline row)
        std::size_t run;
    };
    std::vector<Row> rows;
    for (Design design : designs) {
        for (double theta : thetas) {
            auto off = base(design);
            off.zipfTheta = theta;
            rows.push_back({design, theta, 0, runner.add(off)});
            for (Bytes capacity : capacities) {
                auto config = base(design);
                config.zipfTheta = theta;
                config.readCacheBytes = capacity;
                config.readCachePlacement =
                    design == Design::CpuOnly
                        ? middletier::ReadCachePlacement::HostDram
                        : middletier::ReadCachePlacement::DeviceHbm;
                rows.push_back({design, theta, capacity,
                                runner.add(config)});
            }
        }
    }
    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    Table table("Zipf theta x cache capacity (70% reads)");
    table.header({"design", "theta", "cache(MiB)", "hit%", "p99(us)",
                  "saved(MB)"});
    for (const Row &row : rows) {
        const auto &r = runner.result(row.run);
        const double lookups =
            static_cast<double>(r.cache.hits + r.cache.misses);
        const double hit_pct =
            lookups > 0.0
                ? 100.0 * static_cast<double>(r.cache.hits) / lookups
                : 0.0;
        table.row({middletier::designName(row.design), fmt(row.theta, 2),
                   row.capacity ? fmt(row.capacity >> 20, 0)
                                : std::string("off"),
                   fmt(hit_pct, 1), fmt(r.p99LatencyUs, 1),
                   fmt(static_cast<double>(r.cache.hitBytes) / 1e6, 1)});
    }
    table.print();
    table.writeCsv("results/ext_skewed_cache.csv");

    std::printf("\nHotter address streams (higher theta) and larger "
                "caches both raise the hit rate; every hit replaces a "
                "storage fetch + decompress round trip with one local "
                "memory read, trimming the read tail and keeping the "
                "fetched bytes off the fabric.\n");
    return 0;
}
