/**
 * @file
 * Extension: serving I/O through storage-node failures.
 *
 * The middle tier exists because storage nodes fail (Section 2.1), yet
 * the paper evaluates a healthy pool. This bench turns the fault
 * injector on and sweeps the crash rate — from a healthy pool to a node
 * crashing every half millisecond (an absurdly hostile compression of
 * real MTBF, so the failover machinery fires constantly inside the
 * measured window) — and reports goodput and tail latency for the
 * CPU-only tier and SmartDS, plus the failover counters behind them.
 * A second sweep holds the crash rate fixed and varies the ack quorum,
 * showing how 2-of-3 completion shields the VM tail from stragglers at
 * the cost of background repairs.
 */

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/table.h"

namespace {

using namespace smartds;
using namespace smartds::bench;
using namespace smartds::time_literals;
using middletier::Design;

workload::ExperimentConfig
faulty(Design design)
{
    auto config = design == Design::CpuOnly
                      ? moderate(Design::CpuOnly, 16)
                      : moderate(Design::SmartDs, 2);
    config.storageServers = 12; // headroom for re-placement
    config.readFraction = 0.2;
    config.crashOutage = 2 * ticksPerMillisecond;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    Harness harness(argc, argv, "ext_fault_tolerance");

    std::printf("Extension: fault tolerance under storage-node crash "
                "churn (12-node pool, 2 ms outages, 20%% reads)\n\n");

    const std::vector<Design> designs = {Design::CpuOnly, Design::SmartDs};
    // interval 0 (healthy pool) leads so it survives a smoke trim: it is
    // the vs-healthy baseline.
    const std::vector<Tick> intervals =
        sweep({Tick{0}, 4 * ticksPerMillisecond, 2 * ticksPerMillisecond,
               1 * ticksPerMillisecond, Tick{500_us}});
    const std::vector<unsigned> quorums = sweep({0u, 2u});

    workload::SweepRunner runner(harness.jobs());
    std::vector<std::vector<std::size_t>> crash_indices;
    for (Design design : designs) {
        std::vector<std::size_t> per_design;
        for (const Tick interval : intervals) {
            auto config = faulty(design);
            config.crashMeanInterval = interval;
            per_design.push_back(runner.add(config));
        }
        crash_indices.push_back(std::move(per_design));
    }
    std::vector<std::vector<std::size_t>> quorum_indices;
    for (Design design : designs) {
        std::vector<std::size_t> per_design;
        for (const unsigned q : quorums) {
            auto config = faulty(design);
            config.crashMeanInterval = 1 * ticksPerMillisecond;
            config.ackQuorum = q;
            // One retry only: replicas stuck behind an outage are handed
            // to background repair rather than retried into it.
            config.replicaMaxRetries = 1;
            per_design.push_back(runner.add(config));
        }
        quorum_indices.push_back(std::move(per_design));
    }
    runner.run();
    harness.noteSweep(runner);
    harness.exportTraces(runner);

    Table crash("Crash rate vs goodput and tails");
    crash.header({"design", "crash-ivl(us)", "crashes", "tput(Gbps)",
                  "vs-healthy", "p99(us)", "timeouts", "replaced",
                  "read-fo"});
    for (std::size_t di = 0; di < designs.size(); ++di) {
        const Design design = designs[di];
        double healthy = 0.0;
        for (std::size_t ii = 0; ii < intervals.size(); ++ii) {
            const Tick interval = intervals[ii];
            const auto &r = runner.result(crash_indices[di][ii]);
            if (interval == 0)
                healthy = r.throughputGbps;
            crash.row({middletier::designName(design),
                       interval ? fmt(toMicroseconds(interval), 0) : "off",
                       fmt(static_cast<double>(r.crashesInjected), 0),
                       fmt(r.throughputGbps, 1),
                       fmt(r.throughputGbps / healthy, 2),
                       fmt(r.p99LatencyUs, 1),
                       fmt(static_cast<double>(
                               r.failover.replicaTimeouts), 0),
                       fmt(static_cast<double>(
                               r.failover.replicaReplacements), 0),
                       fmt(static_cast<double>(
                               r.failover.readFailovers), 0)});
        }
        crash.separator();
    }
    crash.print();
    crash.writeCsv("results/ext_fault_tolerance.csv");

    std::printf("\n");
    Table quorum("Ack quorum vs tails under fixed churn "
                 "(1 ms crash interval)");
    quorum.header({"design", "quorum", "tput(Gbps)", "p99(us)",
                   "p999(us)", "quorum-done", "repairs"});
    for (std::size_t di = 0; di < designs.size(); ++di) {
        for (std::size_t qi = 0; qi < quorums.size(); ++qi) {
            const auto &r = runner.result(quorum_indices[di][qi]);
            quorum.row({middletier::designName(designs[di]),
                        quorums[qi] ? "2-of-3" : "all-3",
                        fmt(r.throughputGbps, 1), fmt(r.p99LatencyUs, 1),
                        fmt(r.p999LatencyUs, 1),
                        fmt(static_cast<double>(
                                r.failover.quorumCompletions), 0),
                        fmt(static_cast<double>(r.repairsCompleted), 0)});
        }
        quorum.separator();
    }
    quorum.print();
    quorum.writeCsv("results/ext_fault_tolerance_quorum.csv");

    std::printf(
        "\nCrash churn costs goodput roughly in proportion to the "
        "fraction of replicas that must time out and re-place, and the "
        "write tail absorbs one ack-timeout round trip when a crash "
        "lands mid-request. SmartDS and the CPU-only tier degrade "
        "alike - failover is control-plane work, so offloading the data "
        "plane neither helps nor hurts it. A 2-of-3 quorum detaches the "
        "VM ack from the slowest replica: the tail flattens toward the "
        "healthy case while the abandoned stragglers drain through the "
        "background repair queue instead of the latency path.\n");
    return 0;
}
