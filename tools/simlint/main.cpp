/**
 * @file
 * simlint command-line driver.
 *
 *   simlint [--config rules.toml] [--root DIR] [--json] PATH...
 *
 * Each PATH is a file or a directory (recursed for .h/.cpp, skipping
 * hidden and build* directories). Paths are reported relative to
 * --root (default: current directory) so rules.toml allow prefixes
 * like "bench/" match regardless of where the tool is invoked from.
 *
 * Exit status: 0 = clean (or warnings only), 1 = error-severity
 * findings, 2 = usage / configuration problem.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "linter.h"

namespace {

namespace fs = std::filesystem;

bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

bool
lintableFile(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp";
}

bool
skippableDir(const fs::path &path)
{
    const std::string name = path.filename().string();
    return name.empty() || name[0] == '.' || name.rfind("build", 0) == 0;
}

void
collect(const fs::path &path, std::vector<fs::path> &out)
{
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        std::vector<fs::path> entries;
        for (const auto &entry : fs::directory_iterator(path, ec))
            entries.push_back(entry.path());
        std::sort(entries.begin(), entries.end());
        for (const fs::path &child : entries) {
            if (fs::is_directory(child, ec)) {
                if (!skippableDir(child))
                    collect(child, out);
            } else if (lintableFile(child)) {
                out.push_back(child);
            }
        }
        return;
    }
    out.push_back(path);
}

std::string
relativeTo(const fs::path &path, const fs::path &root)
{
    std::error_code ec;
    const fs::path rel = fs::proximate(path, root, ec);
    std::string s = (ec || rel.empty()) ? path.string() : rel.string();
    if (s.rfind("./", 0) == 0)
        s = s.substr(2);
    return s;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--config rules.toml] [--root DIR] [--json] "
                 "[--list-rules] PATH...\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string configPath;
    fs::path root = fs::current_path();
    bool json = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "--config") == 0 && i + 1 < argc) {
            configPath = argv[++i];
        } else if (std::strcmp(arg, "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (std::strcmp(arg, "--list-rules") == 0) {
            for (const std::string &rule : simlint::allRules())
                std::printf("%s\n", rule.c_str());
            return 0;
        } else if (arg[0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        return usage(argv[0]);

    simlint::Config config;
    if (!configPath.empty()) {
        std::string text;
        if (!readFile(configPath, text)) {
            std::fprintf(stderr, "simlint: cannot read config '%s'\n",
                         configPath.c_str());
            return 2;
        }
        std::string error;
        if (!simlint::parseRulesConfig(text, config, error)) {
            std::fprintf(stderr, "simlint: %s: %s\n", configPath.c_str(),
                         error.c_str());
            return 2;
        }
    }

    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (!fs::exists(p, ec)) {
            std::fprintf(stderr, "simlint: no such path '%s'\n", p.c_str());
            return 2;
        }
        collect(p, files);
    }

    std::vector<simlint::Source> sources;
    sources.reserve(files.size());
    for (const fs::path &file : files) {
        simlint::Source src;
        src.path = relativeTo(file, root);
        if (!readFile(file, src.text)) {
            std::fprintf(stderr, "simlint: cannot read '%s'\n",
                         file.string().c_str());
            return 2;
        }
        sources.push_back(std::move(src));
    }

    const std::vector<simlint::Finding> findings =
        simlint::lint(sources, config);
    if (json) {
        std::fputs(simlint::renderJson(findings).c_str(), stdout);
    } else {
        std::fputs(simlint::renderText(findings).c_str(), stdout);
        std::size_t errors = 0, warnings = 0;
        for (const simlint::Finding &f : findings)
            (f.severity == simlint::Severity::Error ? errors : warnings)++;
        std::printf("simlint: %zu file(s), %zu error(s), %zu warning(s)\n",
                    sources.size(), errors, warnings);
    }
    for (const simlint::Finding &f : findings)
        if (f.severity == simlint::Severity::Error)
            return 1;
    return 0;
}
