/**
 * @file
 * simlint command-line driver.
 *
 *   simlint [--config rules.toml] [--root DIR] [--json]
 *           [--sarif FILE] [--diff-base REV] [--perf-out FILE] PATH...
 *
 * Each PATH is a file or a directory (recursed for .h/.cpp, skipping
 * hidden and build* directories). Paths are reported relative to
 * --root (default: current directory) so rules.toml allow prefixes
 * like "bench/" match regardless of where the tool is invoked from.
 *
 * --sarif FILE     additionally write the findings as SARIF 2.1.0
 *                  (for CI code-scanning upload / inline annotations).
 * --diff-base REV  lint the same files at git revision REV (via
 *                  `git show`; --root must be the worktree root) and
 *                  report/fail only on findings *introduced* since REV,
 *                  so warn-severity rules can ratchet without a flag
 *                  day.
 * --perf-out FILE  append a bench_perf.jsonl-style record with the
 *                  lint wall time and line throughput, so
 *                  tools/perf_diff.py can gate lint-speed regressions.
 *
 * Exit status: 0 = clean (or warnings only), 1 = error-severity
 * findings, 2 = usage / configuration problem.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include "linter.h"

namespace {

namespace fs = std::filesystem;

bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

bool
lintableFile(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp";
}

bool
skippableDir(const fs::path &path)
{
    const std::string name = path.filename().string();
    return name.empty() || name[0] == '.' || name.rfind("build", 0) == 0;
}

void
collect(const fs::path &path, std::vector<fs::path> &out)
{
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        std::vector<fs::path> entries;
        for (const auto &entry : fs::directory_iterator(path, ec))
            entries.push_back(entry.path());
        std::sort(entries.begin(), entries.end());
        for (const fs::path &child : entries) {
            if (fs::is_directory(child, ec)) {
                if (!skippableDir(child))
                    collect(child, out);
            } else if (lintableFile(child)) {
                out.push_back(child);
            }
        }
        return;
    }
    out.push_back(path);
}

std::string
relativeTo(const fs::path &path, const fs::path &root)
{
    std::error_code ec;
    const fs::path rel = fs::proximate(path, root, ec);
    std::string s = (ec || rel.empty()) ? path.string() : rel.string();
    if (s.rfind("./", 0) == 0)
        s = s.substr(2);
    return s;
}

/** `git show REV:path` under @p root; false if absent at that rev. */
bool
gitShow(const fs::path &root, const std::string &rev,
        const std::string &relPath, std::string &out)
{
    const std::string cmd = "git -C '" + root.string() + "' show '" + rev +
                            ":" + relPath + "' 2>/dev/null";
    FILE *pipe = popen(cmd.c_str(), "r");
    if (!pipe)
        return false;
    char buf[4096];
    std::string text;
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0)
        text.append(buf, n);
    const int rc = pclose(pipe);
    if (rc != 0)
        return false;
    out = std::move(text);
    return true;
}

/** Append one bench_perf.jsonl record (O_APPEND single write, so
 *  concurrent bench processes cannot interleave lines). */
void
appendPerfRecord(const std::string &path, std::size_t lines, double wallS)
{
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    const double rssMb = static_cast<double>(ru.ru_maxrss) / 1024.0;
    char rec[512];
    std::snprintf(rec, sizeof rec,
                  "{\"bench\":\"simlint_tree\",\"jobs\":1,"
                  "\"smoke\":false,\"events\":%zu,\"wall_s\":%.6f,"
                  "\"events_per_sec\":%.1f,\"peak_rss_mb\":%.1f,"
                  "\"unix_time\":%lld}\n",
                  lines, wallS, wallS > 0 ? lines / wallS : 0.0, rssMb,
                  static_cast<long long>(std::time(nullptr)));
    const int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
        std::fprintf(stderr, "simlint: cannot append to '%s'\n",
                     path.c_str());
        return;
    }
    const ssize_t ignored = write(fd, rec, std::strlen(rec));
    (void)ignored;
    close(fd);
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--config rules.toml] [--root DIR] [--json] "
                 "[--sarif FILE] [--diff-base REV] [--perf-out FILE] "
                 "[--list-rules] PATH...\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string configPath;
    fs::path root = fs::current_path();
    bool json = false;
    std::string sarifPath;
    std::string diffBase;
    std::string perfOut;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "--config") == 0 && i + 1 < argc) {
            configPath = argv[++i];
        } else if (std::strcmp(arg, "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (std::strcmp(arg, "--sarif") == 0 && i + 1 < argc) {
            sarifPath = argv[++i];
        } else if (std::strcmp(arg, "--diff-base") == 0 && i + 1 < argc) {
            diffBase = argv[++i];
        } else if (std::strcmp(arg, "--perf-out") == 0 && i + 1 < argc) {
            perfOut = argv[++i];
        } else if (std::strcmp(arg, "--list-rules") == 0) {
            for (const std::string &rule : simlint::allRules())
                std::printf("%s\n", rule.c_str());
            return 0;
        } else if (arg[0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        return usage(argv[0]);

    simlint::Config config;
    if (!configPath.empty()) {
        std::string text;
        if (!readFile(configPath, text)) {
            std::fprintf(stderr, "simlint: cannot read config '%s'\n",
                         configPath.c_str());
            return 2;
        }
        std::string error;
        if (!simlint::parseRulesConfig(text, config, error)) {
            std::fprintf(stderr, "simlint: %s: %s\n", configPath.c_str(),
                         error.c_str());
            return 2;
        }
    }

    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (!fs::exists(p, ec)) {
            std::fprintf(stderr, "simlint: no such path '%s'\n", p.c_str());
            return 2;
        }
        collect(p, files);
    }

    std::vector<simlint::Source> sources;
    sources.reserve(files.size());
    std::size_t totalLines = 0;
    for (const fs::path &file : files) {
        simlint::Source src;
        src.path = relativeTo(file, root);
        if (!readFile(file, src.text)) {
            std::fprintf(stderr, "simlint: cannot read '%s'\n",
                         file.string().c_str());
            return 2;
        }
        totalLines += static_cast<std::size_t>(
            std::count(src.text.begin(), src.text.end(), '\n'));
        sources.push_back(std::move(src));
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<simlint::Finding> findings = simlint::lint(sources, config);
    const double wallS =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!perfOut.empty())
        appendPerfRecord(perfOut, totalLines, wallS);

    if (!diffBase.empty()) {
        std::vector<simlint::Source> baseSources;
        baseSources.reserve(sources.size());
        for (const simlint::Source &src : sources) {
            std::string text;
            if (gitShow(root, diffBase, src.path, text))
                baseSources.push_back({src.path, std::move(text)});
            // Absent at the base revision: a new file, so every finding
            // in it is new.
        }
        const std::vector<simlint::Finding> baseFindings =
            simlint::lint(baseSources, config);
        findings = simlint::diffNewFindings(findings, sources,
                                            baseFindings, baseSources);
    }

    if (!sarifPath.empty()) {
        std::ofstream out(sarifPath, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "simlint: cannot write '%s'\n",
                         sarifPath.c_str());
            return 2;
        }
        out << simlint::renderSarif(findings);
    }

    if (json) {
        std::fputs(simlint::renderJson(findings).c_str(), stdout);
    } else {
        std::fputs(simlint::renderText(findings).c_str(), stdout);
        std::size_t errors = 0, warnings = 0;
        for (const simlint::Finding &f : findings)
            (f.severity == simlint::Severity::Error ? errors : warnings)++;
        std::printf("simlint: %zu file(s), %zu error(s), %zu warning(s)%s\n",
                    sources.size(), errors, warnings,
                    diffBase.empty() ? ""
                                     : " (new relative to --diff-base)");
    }
    for (const simlint::Finding &f : findings)
        if (f.severity == simlint::Severity::Error)
            return 1;
    return 0;
}
