/**
 * @file
 * simlint — repo-specific determinism & invariant static analysis.
 *
 * A from-scratch token/heuristic-level C++ linter (no libclang) that
 * enforces the conventions the simulator's headline guarantees rest on:
 * byte-identical sweeps for any `--jobs N` and deterministic traces.
 *
 * The v2 engine has two layers. The lexing layer (lexer.h) strips and
 * tokenizes each file preserving (line, column). Local rules run per
 * file over those tokens; the cross-TU layer (index.h) additionally
 * builds a repo-wide symbol index, include graph and approximate call
 * graph that the global rule family queries. Each rule catches a bug
 * class that previously had to be audited by hand:
 *
 *  - wall-clock:          reading host time into simulation state
 *  - raw-rand:            rand()/std::random_device/<random> engines
 *                         instead of the seeded smartds::Rng
 *  - unordered-iter:      iterating std::unordered_{map,set} (hash-order
 *                         nondeterminism) anywhere results could depend
 *                         on visit order
 *  - mutable-global:      non-const globals / function-local mutable
 *                         `static` state (breaks concurrent SweepRunner
 *                         instances and run-to-run reproducibility)
 *  - shared-sim-state:    mutable namespace-scope or static-member state
 *                         transitively reachable from a simulation entry
 *                         directory (src/sim|middletier|net|workload) —
 *                         the PDES shard-isolation gate; supersedes
 *                         mutable-global inside those directories
 *  - ptr-keyed-container: containers keyed or ordered by pointer value,
 *                         whose visit order is address-dependent
 *  - event-handle-misuse: raw event slot indices stored instead of the
 *                         generation-counted sim::EventHandle, or
 *                         cancelling via a moved-from handle
 *  - span-imbalance:      a trace span opened (`.mark = tick`) with no
 *                         matching close (`.mark = 0`) in the file or
 *                         its direct include neighbours
 *  - raw-io:              printf/std::cout outside the logging module
 *                         and the bench harness (interleaves under -j)
 *  - naked-new:           owning `new` in the datapath (leak-prone; the
 *                         tree is smart-pointer / slab-pool based)
 *  - tick-float:          float/double arithmetic producing Tick values
 *                         (rounding may reorder events across platforms)
 *  - missing-nodiscard:   error-returning APIs (std::optional returns)
 *                         without [[nodiscard]]
 *  - bad-suppression:     a `// simlint: allow(...)` comment that names
 *                         an unknown rule or omits the justification
 *
 * Findings can be suppressed per line with
 *     // simlint: allow(rule-id): <mandatory justification>
 * either trailing the offending line or on a line of its own (then it
 * applies to the next statement). Severity and per-rule allowed path
 * prefixes come from rules.toml (see parseRulesConfig()).
 */

#ifndef SMARTDS_TOOLS_SIMLINT_LINTER_H_
#define SMARTDS_TOOLS_SIMLINT_LINTER_H_

#include <map>
#include <string>
#include <vector>

namespace simlint {

/** Per-rule reporting level. */
enum class Severity { Off, Warn, Error };

/** One finding: a rule violated at file:line. */
struct Finding
{
    std::string file;    ///< path as given to the linter
    int line = 0;        ///< 1-based
    std::string rule;    ///< rule id, e.g. "unordered-iter"
    Severity severity = Severity::Error;
    std::string message; ///< human-readable explanation
};

/** Configuration for one rule. */
struct RuleConfig
{
    Severity severity = Severity::Error;
    /** Path prefixes (relative, '/'-separated) the rule ignores. */
    std::vector<std::string> allow;
};

/** Whole-linter configuration: rule id -> config. */
struct Config
{
    std::map<std::string, RuleConfig> rules;
    /** Path prefixes excluded from linting entirely (e.g. fixtures). */
    std::vector<std::string> exclude;

    /** Effective severity for @p rule (default Error for known rules). */
    Severity severityFor(const std::string &rule) const;

    /** Whether @p rule ignores @p path via its allow prefixes. */
    bool allowsPath(const std::string &rule, const std::string &path) const;
};

/** A file to lint: path (used for reporting + allow lists) and text. */
struct Source
{
    std::string path;
    std::string text;
};

/** All rule ids simlint knows, in reporting order. */
const std::vector<std::string> &allRules();

/**
 * Parse the rules.toml subset: a `[lint]` table with
 * `exclude = ["prefix", ...]`, and `[rules.<id>]` tables containing
 * `severity = "off"|"warn"|"error"` and `allow = ["prefix", ...]`.
 * Lines starting with '#' are comments. On failure returns false and
 * sets @p error.
 */
bool parseRulesConfig(const std::string &text, Config &config,
                      std::string &error);

/**
 * Lint @p sources under @p config. Local rules run per file; the
 * cross-TU rules (shared-sim-state, span-imbalance, and the
 * unordered-iter declaration index) run over a repo-wide symbol/include/
 * call-graph index built from the whole set, with each finding
 * attributed to the declaring file so suppressions and allow lists
 * apply there. Findings are sorted by (file, line, rule).
 */
std::vector<Finding> lint(const std::vector<Source> &sources,
                          const Config &config);

/**
 * Return the findings in @p current that are new relative to @p base
 * (the same tree linted at a base revision). Findings are matched by
 * (file, rule, trimmed source-line text) so unrelated edits that shift
 * line numbers do not resurrect old findings; @p currentSources /
 * @p baseSources supply the line text.
 */
std::vector<Finding>
diffNewFindings(const std::vector<Finding> &current,
                const std::vector<Source> &currentSources,
                const std::vector<Finding> &base,
                const std::vector<Source> &baseSources);

/** Render findings as "file:line: severity[rule] message" lines. */
std::string renderText(const std::vector<Finding> &findings);

/** Render findings as a JSON array (stable key order). */
std::string renderJson(const std::vector<Finding> &findings);

/** Render findings as a SARIF 2.1.0 log (for CI code-scanning upload). */
std::string renderSarif(const std::vector<Finding> &findings);

} // namespace simlint

#endif // SMARTDS_TOOLS_SIMLINT_LINTER_H_
