#include "lexer.h"

#include <sstream>

namespace simlint {

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

namespace {

/** Parse `simlint: allow(rule[, rule...])[: justification]` in @p comment. */
bool
parseSuppression(const std::string &comment, Suppression &out)
{
    const std::size_t mark = comment.find("simlint:");
    if (mark == std::string::npos)
        return false;
    std::size_t p = comment.find("allow", mark);
    if (p == std::string::npos)
        return true; // malformed: "simlint:" with no allow(...)
    p = comment.find('(', p);
    const std::size_t close = comment.find(')', p == std::string::npos
                                                    ? mark : p);
    if (p == std::string::npos || close == std::string::npos)
        return true; // malformed
    std::string inside = comment.substr(p + 1, close - p - 1);
    std::string rule;
    std::istringstream list(inside);
    while (std::getline(list, rule, ','))
        if (!trim(rule).empty())
            out.rules.push_back(trim(rule));
    // Mandatory justification: a ':' after the ')' followed by text.
    const std::size_t colon = comment.find(':', close);
    if (colon != std::string::npos &&
        !trim(comment.substr(colon + 1)).empty())
        out.justified = true;
    return true;
}

/** Extract the quoted target of an `#include "..."` directive, if any. */
void
collectInclude(const std::string &lead, std::vector<std::string> &out)
{
    if (lead.empty() || lead[0] != '#')
        return;
    std::size_t p = lead.find("include", 1);
    if (p == std::string::npos)
        return;
    p = lead.find('"', p);
    if (p == std::string::npos)
        return; // <...> system include
    const std::size_t end = lead.find('"', p + 1);
    if (end != std::string::npos && end > p + 1)
        out.push_back(lead.substr(p + 1, end - p - 1));
}

} // namespace

StrippedFile
stripFile(const std::string &text)
{
    StrippedFile out;
    {
        std::string line;
        std::istringstream in(text);
        while (std::getline(in, line)) {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            out.raw.push_back(line);
        }
    }
    out.code.reserve(out.raw.size());

    enum State { Code, Block };
    State state = Code;
    bool ppContinuation = false;
    for (std::size_t li = 0; li < out.raw.size(); ++li) {
        const std::string &src = out.raw[li];
        std::string dst(src.size(), ' ');

        // Preprocessor directives (and their backslash continuations)
        // carry no scope or statements we want to lint structurally, but
        // `#include "..."` targets feed the include graph.
        const std::string lead = trim(src);
        const bool isPp = ppContinuation ||
                          (state == Code && !lead.empty() && lead[0] == '#');
        if (isPp) {
            if (!ppContinuation)
                collectInclude(lead, out.includes);
            ppContinuation = !src.empty() && src.back() == '\\';
            out.code.push_back(dst);
            continue;
        }

        std::string comment; // accumulated // comment text on this line
        for (std::size_t i = 0; i < src.size(); ++i) {
            if (state == Block) {
                if (src[i] == '*' && i + 1 < src.size() &&
                    src[i + 1] == '/') {
                    state = Code;
                    ++i;
                }
                continue;
            }
            const char c = src[i];
            if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
                comment = src.substr(i + 2);
                break;
            }
            if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
                state = Block;
                ++i;
                continue;
            }
            if (c == '"' || c == '\'') {
                // Raw strings: R"delim( ... )delim"
                if (c == '"' && i > 0 && src[i - 1] == 'R') {
                    const std::size_t open = src.find('(', i);
                    if (open != std::string::npos) {
                        const std::string delim =
                            ")" + src.substr(i + 1, open - i - 1) + "\"";
                        const std::size_t end = src.find(delim, open);
                        i = end == std::string::npos
                                ? src.size()
                                : end + delim.size() - 1;
                        continue;
                    }
                }
                const char quote = c;
                ++i;
                while (i < src.size()) {
                    if (src[i] == '\\')
                        ++i;
                    else if (src[i] == quote)
                        break;
                    ++i;
                }
                continue;
            }
            dst[i] = c;
        }

        if (!comment.empty()) {
            Suppression sup;
            if (parseSuppression(comment, sup)) {
                sup.standalone = trim(dst).empty();
                out.suppressions[static_cast<int>(li) + 1] = sup;
            }
        }
        out.code.push_back(dst);
    }
    return out;
}

bool
Token::floatLiteral() const
{
    if (!number())
        return false;
    if (text.size() > 1 && text[1] == 'x')
        return text.find('.') != std::string::npos ||
               text.find('p') != std::string::npos ||
               text.find('P') != std::string::npos;
    return text.find('.') != std::string::npos ||
           text.find('e') != std::string::npos ||
           text.find('E') != std::string::npos ||
           text.back() == 'f' || text.back() == 'F';
}

std::vector<Token>
tokenize(const std::vector<std::string> &code)
{
    std::vector<Token> out;
    for (std::size_t li = 0; li < code.size(); ++li) {
        const std::string &s = code[li];
        const int line = static_cast<int>(li) + 1;
        for (std::size_t i = 0; i < s.size();) {
            const char c = s[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            if (isIdentStart(c)) {
                std::size_t j = i + 1;
                while (j < s.size() && isIdentChar(s[j]))
                    ++j;
                out.push_back({s.substr(i, j - i), line});
                i = j;
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c))) {
                std::size_t j = i + 1;
                while (j < s.size() &&
                       (isIdentChar(s[j]) || s[j] == '.' || s[j] == '\'' ||
                        ((s[j] == '+' || s[j] == '-') &&
                         (s[j - 1] == 'e' || s[j - 1] == 'E' ||
                          s[j - 1] == 'p' || s[j - 1] == 'P'))))
                    ++j;
                out.push_back({s.substr(i, j - i), line});
                i = j;
                continue;
            }
            // Multi-char punctuation the rules care about.
            if (i + 1 < s.size()) {
                const char n = s[i + 1];
                if ((c == ':' && n == ':') || (c == '-' && n == '>') ||
                    (c == '[' && n == '[') || (c == ']' && n == ']')) {
                    out.push_back({s.substr(i, 2), line});
                    i += 2;
                    continue;
                }
            }
            out.push_back({std::string(1, c), line});
            ++i;
        }
    }
    return out;
}

std::size_t
matchForward(const std::vector<Token> &t, std::size_t open,
             const char *openSym, const char *closeSym)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (t[i].is(openSym))
            ++depth;
        else if (t[i].is(closeSym) && --depth == 0)
            return i;
    }
    return std::string::npos;
}

} // namespace simlint
