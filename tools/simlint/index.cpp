#include "index.h"

#include <algorithm>
#include <deque>

namespace simlint {

namespace {

/** Whether [b,e) contains a constness keyword. */
bool
spanHasConst(const std::vector<Token> &t, std::size_t b, std::size_t e)
{
    for (std::size_t j = b; j < e; ++j)
        if (t[j].is("const") || t[j].is("constexpr") ||
            t[j].is("constinit") || t[j].is("consteval"))
            return true;
    return false;
}

/** Whether [b,e) looks like a function declaration: `ident (` with no
 *  preceding `=` (an initializer call like `int x = f();` is not). */
bool
spanIsFunction(const std::vector<Token> &t, std::size_t b, std::size_t e)
{
    for (std::size_t j = b; j + 1 < e; ++j) {
        if (t[j].is("="))
            return false;
        if ((t[j].ident() || t[j].is("]")) && t[j + 1].is("("))
            return !t[j].is("alignas") && !t[j].is("decltype") &&
                   !t[j].is("sizeof");
    }
    return false;
}

/** Statement keywords that rule out a namespace-scope variable decl. */
const std::set<std::string> &
skipLeadKeywords()
{
    static const std::set<std::string> kw = {
        "using",  "typedef",  "namespace", "template", "extern",
        "friend", "struct",   "class",     "union",    "enum",
        "public", "private",  "protected", "operator",
        "if",     "for",      "while",     "return",   "switch",
    };
    return kw;
}

/** Keywords/casts that look like `ident(` but are not call edges. */
const std::set<std::string> &
nonCallKeywords()
{
    static const std::set<std::string> kw = {
        "if",         "for",        "while",      "switch",
        "return",     "sizeof",     "alignof",    "alignas",
        "decltype",   "catch",      "new",        "delete",
        "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
        "static_assert", "defined",  "noexcept",  "operator",
        "throw",      "co_return",  "co_await",   "co_yield",
        "assert",
    };
    return kw;
}

/** Control keywords whose `(...) {` is a block, not a function body. */
const std::set<std::string> &
controlKeywords()
{
    static const std::set<std::string> kw = {
        "if", "for", "while", "switch", "catch", "do", "else",
    };
    return kw;
}

struct Scope
{
    char kind = 'o'; ///< 'n' namespace, 'c' class, 'f' function, 'o' other
    std::size_t fnIndex = 0; ///< into the per-file function list ('f' only)
};

/** One scanned function body, before grouping into the index. */
struct RawFunction
{
    FunctionDef def;
    std::size_t bodyBegin = 0; ///< token index just after the opening '{'
    std::size_t bodyEnd = 0;   ///< token index of the closing '}'
};

struct FileScan
{
    std::vector<MutableState> mutables;
    std::vector<RawFunction> functions;
};

/** End of the declaration starting at @p from: `;`/`{`/`}` at depth 0. */
std::size_t
declEnd(const std::vector<Token> &t, std::size_t from)
{
    int pd = 0;
    for (std::size_t j = from; j < t.size(); ++j) {
        if (t[j].is("("))
            ++pd;
        else if (t[j].is(")"))
            --pd;
        else if (pd == 0 && (t[j].is(";") || t[j].is("{") || t[j].is("}")))
            return j;
    }
    return t.size();
}

FileScan
scanFile(const FileUnit &unit)
{
    const std::vector<Token> &t = unit.tokens;
    FileScan out;
    std::vector<Scope> scopes;
    std::size_t stmtStart = 0;
    int parenDepth = 0;

    auto atNsScope = [&]() {
        return std::all_of(scopes.begin(), scopes.end(),
                           [](const Scope &s) { return s.kind == 'n'; });
    };
    auto enclosingFunction = [&]() -> RawFunction * {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it)
            if (it->kind == 'f')
                return &out.functions[it->fnIndex];
        return nullptr;
    };

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].is("(")) {
            ++parenDepth;
        } else if (t[i].is(")")) {
            --parenDepth;
        } else if (t[i].is("{")) {
            Scope scope;
            bool sawEq = false;
            char declared = 0;
            for (std::size_t j = stmtStart; j < i; ++j) {
                if (t[j].is("="))
                    sawEq = true;
                else if (t[j].is("namespace"))
                    declared = 'n';
                else if (!sawEq && !declared &&
                         (t[j].is("class") || t[j].is("struct") ||
                          t[j].is("union") || t[j].is("enum")))
                    declared = 'c';
            }
            if (declared == 'n') {
                scope.kind = 'n';
            } else if (declared == 'c' && !sawEq) {
                scope.kind = 'c';
            } else if (enclosingFunction() || sawEq) {
                scope.kind = 'o'; // inner block or brace initializer
            } else {
                // A `{` at namespace/class scope whose statement carries
                // a top-level `name(...)` is a function definition.
                std::size_t open = std::string::npos;
                int pd = 0;
                for (std::size_t j = stmtStart; j < i; ++j) {
                    if (t[j].is("(")) {
                        if (pd == 0 && open == std::string::npos)
                            open = j;
                        ++pd;
                    } else if (t[j].is(")")) {
                        --pd;
                    }
                }
                if (open != std::string::npos && open > stmtStart &&
                    t[open - 1].ident() &&
                    !controlKeywords().count(t[open - 1].text) &&
                    !t[open - 1].is("operator")) {
                    RawFunction fn;
                    fn.def.name = t[open - 1].text;
                    fn.def.file = unit.path;
                    fn.def.line = t[open - 1].line;
                    fn.bodyBegin = i + 1;
                    scope.kind = 'f';
                    scope.fnIndex = out.functions.size();
                    out.functions.push_back(std::move(fn));
                } else {
                    scope.kind = 'o';
                }
            }
            scopes.push_back(scope);
            stmtStart = i + 1;
            continue;
        } else if (t[i].is("}")) {
            if (!scopes.empty()) {
                if (scopes.back().kind == 'f')
                    out.functions[scopes.back().fnIndex].bodyEnd = i;
                scopes.pop_back();
            }
            stmtStart = i + 1;
            continue;
        } else if (t[i].is(";") && parenDepth == 0) {
            stmtStart = i + 1;
            continue;
        }

        // Call edges: `identifier(` inside a function body.
        if (t[i].ident() && i + 1 < t.size() && t[i + 1].is("(") &&
            !nonCallKeywords().count(t[i].text)) {
            if (RawFunction *fn = enclosingFunction())
                fn->def.calls.insert(t[i].text);
        }

        // (a) `static` mutable state at any scope (function-local,
        //     class-static data member, namespace scope).
        if (t[i].is("static") && parenDepth == 0) {
            const std::size_t end = declEnd(t, i);
            if (!spanHasConst(t, i, end) && !spanIsFunction(t, i, end)) {
                std::string name;
                for (std::size_t j = i + 1; j < end; ++j) {
                    if (t[j].is("=") || t[j].is("{"))
                        break;
                    if (t[j].ident())
                        name = t[j].text;
                }
                if (!name.empty()) {
                    MutableState m;
                    m.name = name;
                    m.file = unit.path;
                    m.line = t[i].line;
                    m.staticKeyword = true;
                    if (const RawFunction *fn = enclosingFunction()) {
                        m.kind = MutableState::Kind::FunctionStatic;
                        m.owner = fn->def.name;
                    } else if (!scopes.empty() &&
                               scopes.back().kind == 'c') {
                        m.kind = MutableState::Kind::ClassStatic;
                    } else {
                        m.kind = MutableState::Kind::NamespaceVar;
                    }
                    out.mutables.push_back(std::move(m));
                }
            }
            continue;
        }

        // (b) bare namespace-scope variable declarations. The decl ends
        // at `;`, or at a brace initializer (`Type name{0};`) whose
        // matching close is immediately followed by `;`.
        if (i == stmtStart && atNsScope() && t[i].ident() &&
            parenDepth == 0) {
            const std::size_t end = declEnd(t, i);
            std::size_t term = end;
            if (end < t.size() && t[end].is("{")) {
                const std::size_t close = matchForward(t, end, "{", "}");
                term = (close != std::string::npos &&
                        close + 1 < t.size() && t[close + 1].is(";"))
                           ? close + 1
                           : end;
            }
            if (term < t.size() && t[term].is(";")) {
                bool skip = skipLeadKeywords().count(t[i].text) ||
                            spanHasConst(t, i, end) ||
                            spanIsFunction(t, i, end);
                std::size_t idents = 0;
                std::string name;
                for (std::size_t j = i; j < end && !skip; ++j) {
                    if (t[j].is("(") || t[j].is("operator") ||
                        skipLeadKeywords().count(t[j].text))
                        skip = true;
                    if (t[j].is("="))
                        break;
                    if (t[j].ident() && !t[j].is("std") &&
                        !t[j].is("inline"))
                        ++idents, name = t[j].text;
                }
                if (!skip && idents >= 2) {
                    MutableState m;
                    m.name = name;
                    m.file = unit.path;
                    m.line = t[i].line;
                    m.kind = MutableState::Kind::NamespaceVar;
                    out.mutables.push_back(std::move(m));
                }
                i = term; // skip past the terminating `;`
                stmtStart = term + 1;
                continue;
            }
        }
    }
    return out;
}

} // namespace

SymbolIndex
buildIndex(const std::vector<FileUnit> &units)
{
    SymbolIndex index;

    // Pass 1: per-file symbols, function bodies, call edges.
    std::vector<FileScan> scans;
    scans.reserve(units.size());
    for (const FileUnit &unit : units) {
        scans.push_back(scanFile(unit));
        for (const MutableState &m : scans.back().mutables)
            index.mutables.push_back(m);
    }

    // Include graph, resolved by path-suffix match within the set.
    for (const FileUnit &unit : units) {
        for (const std::string &target : unit.stripped.includes) {
            for (const FileUnit &candidate : units) {
                const std::string &p = candidate.path;
                const bool matches =
                    p == target ||
                    (p.size() > target.size() + 1 &&
                     p.compare(p.size() - target.size(), target.size(),
                               target) == 0 &&
                     p[p.size() - target.size() - 1] == '/');
                if (matches) {
                    index.includes[unit.path].push_back(p);
                    index.includedBy[p].push_back(unit.path);
                }
            }
        }
    }

    // Pass 2: global references inside function bodies (globals are only
    // fully known after pass 1), then group functions by name.
    std::set<std::string> globalNames;
    for (const MutableState &m : index.mutables)
        if (m.kind != MutableState::Kind::FunctionStatic)
            globalNames.insert(m.name);
    for (std::size_t u = 0; u < units.size(); ++u) {
        for (RawFunction &fn : scans[u].functions) {
            const std::vector<Token> &t = units[u].tokens;
            const std::size_t end = std::min(fn.bodyEnd, t.size());
            for (std::size_t j = fn.bodyBegin; j < end; ++j)
                if (t[j].ident() && globalNames.count(t[j].text))
                    fn.def.globalRefs.insert(t[j].text);
            index.functions[fn.def.name].push_back(std::move(fn.def));
        }
    }
    return index;
}

std::map<std::string, std::string>
reachableFunctions(const SymbolIndex &index,
                   const std::set<std::string> &rootFunctions)
{
    std::map<std::string, std::string> reached;
    std::deque<std::string> queue;
    for (const std::string &root : rootFunctions) {
        if (index.functions.count(root) && !reached.count(root)) {
            reached[root] = root;
            queue.push_back(root);
        }
    }
    while (!queue.empty()) {
        const std::string name = queue.front();
        queue.pop_front();
        const std::string &root = reached[name];
        const auto it = index.functions.find(name);
        if (it == index.functions.end())
            continue;
        for (const FunctionDef &def : it->second) {
            for (const std::string &callee : def.calls) {
                if (!index.functions.count(callee) ||
                    reached.count(callee))
                    continue;
                reached[callee] = root;
                queue.push_back(callee);
            }
        }
    }
    return reached;
}

} // namespace simlint
