/**
 * @file
 * simlint repo-wide index: the cross-TU layer of the v2 engine.
 *
 * Built once per lint invocation over the *whole* source set, the index
 * holds three structures the global rule family queries:
 *
 *  - a symbol index: every mutable namespace-scope variable, mutable
 *    function-local `static`, and mutable `static` data member, with its
 *    declaring file/line and (for function-locals) the enclosing
 *    function; plus every function definition by name;
 *  - an include graph: `#include "..."` edges resolved against the
 *    source set by path-suffix match (system includes are ignored);
 *  - an approximate call graph: name-based edges from each function
 *    definition to every `identifier(` call inside its body. No overload
 *    or receiver-type resolution — two functions sharing a name are
 *    merged, which over-approximates reachability. For a safety analysis
 *    over-approximation is the conservative direction: it can only turn
 *    silence into a (suppressible) finding, never hide a real one.
 *
 * The shared-sim-state rule runs reachability over this graph: roots are
 * all functions defined under the simulation entry directories, and any
 * mutable state transitively reached is a finding at its declaration.
 */

#ifndef SMARTDS_TOOLS_SIMLINT_INDEX_H_
#define SMARTDS_TOOLS_SIMLINT_INDEX_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace simlint {

/** One file of the lint set, stripped and tokenized. */
struct FileUnit
{
    std::string path;
    StrippedFile stripped;
    std::vector<Token> tokens;
};

/** A mutable global / static discovered by the symbol pass. */
struct MutableState
{
    enum class Kind
    {
        NamespaceVar,   ///< namespace-scope variable (incl. file statics)
        FunctionStatic, ///< function-local `static`
        ClassStatic,    ///< `static` data member
    };

    std::string name;
    std::string file;
    int line = 0;
    Kind kind = Kind::NamespaceVar;
    /** Enclosing function for FunctionStatic (empty otherwise). */
    std::string owner;
    /** Declared with the `static` keyword (vs. a bare namespace decl). */
    bool staticKeyword = false;
};

/** One function definition (a body, not a mere declaration). */
struct FunctionDef
{
    std::string name;
    std::string file;
    int line = 0;
    /** Callee names (`identifier(` inside the body), deduplicated. */
    std::set<std::string> calls;
    /** Names of indexed globals referenced anywhere in the body. */
    std::set<std::string> globalRefs;
};

/** The whole-source-set index. */
struct SymbolIndex
{
    std::vector<MutableState> mutables;
    /** Function definitions grouped by (unqualified) name. */
    std::map<std::string, std::vector<FunctionDef>> functions;
    /** file -> paths (within the set) it directly includes. */
    std::map<std::string, std::vector<std::string>> includes;
    /** file -> paths (within the set) that directly include it. */
    std::map<std::string, std::vector<std::string>> includedBy;
};

/** Build the index over @p units (two passes; see file comment). */
SymbolIndex buildIndex(const std::vector<FileUnit> &units);

/**
 * Name-based reachability over the call graph: starting from every
 * function defined in a file matching @p rootPred, follow call edges and
 * return reached function names mapped to the root function each was
 * first reached from (roots map to themselves).
 */
std::map<std::string, std::string>
reachableFunctions(const SymbolIndex &index,
                   const std::set<std::string> &rootFunctions);

} // namespace simlint

#endif // SMARTDS_TOOLS_SIMLINT_INDEX_H_
