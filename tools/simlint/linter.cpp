#include "linter.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>
#include <sstream>

namespace simlint {

namespace {

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

// ---------------------------------------------------------------------------
// Phase 1: strip comments / string literals / preprocessor lines, keeping
// every remaining character at its original (line, column) position.
// ---------------------------------------------------------------------------

struct Suppression
{
    std::vector<std::string> rules;
    bool justified = false;
    bool standalone = false; ///< comment-only line: applies to next line
};

struct StrippedFile
{
    std::vector<std::string> raw;  ///< original lines
    std::vector<std::string> code; ///< comments/strings/pp blanked
    std::map<int, Suppression> suppressions; ///< keyed by 1-based line
};

/** Parse `simlint: allow(rule[, rule...])[: justification]` in @p comment. */
bool
parseSuppression(const std::string &comment, Suppression &out)
{
    const std::size_t mark = comment.find("simlint:");
    if (mark == std::string::npos)
        return false;
    std::size_t p = comment.find("allow", mark);
    if (p == std::string::npos)
        return true; // malformed: "simlint:" with no allow(...)
    p = comment.find('(', p);
    const std::size_t close = comment.find(')', p == std::string::npos
                                                    ? mark : p);
    if (p == std::string::npos || close == std::string::npos)
        return true; // malformed
    std::string inside = comment.substr(p + 1, close - p - 1);
    std::string rule;
    std::istringstream list(inside);
    while (std::getline(list, rule, ','))
        if (!trim(rule).empty())
            out.rules.push_back(trim(rule));
    // Mandatory justification: a ':' after the ')' followed by text.
    const std::size_t colon = comment.find(':', close);
    if (colon != std::string::npos &&
        !trim(comment.substr(colon + 1)).empty())
        out.justified = true;
    return true;
}

StrippedFile
stripFile(const std::string &text)
{
    StrippedFile out;
    {
        std::string line;
        std::istringstream in(text);
        while (std::getline(in, line)) {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            out.raw.push_back(line);
        }
    }
    out.code.reserve(out.raw.size());

    enum State { Code, Block };
    State state = Code;
    bool ppContinuation = false;
    for (std::size_t li = 0; li < out.raw.size(); ++li) {
        const std::string &src = out.raw[li];
        std::string dst(src.size(), ' ');

        // Preprocessor directives (and their backslash continuations)
        // carry no scope or statements we want to lint structurally.
        const std::string lead = trim(src);
        const bool isPp = ppContinuation ||
                          (state == Code && !lead.empty() && lead[0] == '#');
        if (isPp) {
            ppContinuation = !src.empty() && src.back() == '\\';
            out.code.push_back(dst);
            continue;
        }

        std::string comment; // accumulated // comment text on this line
        for (std::size_t i = 0; i < src.size(); ++i) {
            if (state == Block) {
                if (src[i] == '*' && i + 1 < src.size() &&
                    src[i + 1] == '/') {
                    state = Code;
                    ++i;
                }
                continue;
            }
            const char c = src[i];
            if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
                comment = src.substr(i + 2);
                break;
            }
            if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
                state = Block;
                ++i;
                continue;
            }
            if (c == '"' || c == '\'') {
                // Raw strings: R"delim( ... )delim"
                if (c == '"' && i > 0 && src[i - 1] == 'R') {
                    const std::size_t open = src.find('(', i);
                    if (open != std::string::npos) {
                        const std::string delim =
                            ")" + src.substr(i + 1, open - i - 1) + "\"";
                        const std::size_t end = src.find(delim, open);
                        i = end == std::string::npos
                                ? src.size()
                                : end + delim.size() - 1;
                        continue;
                    }
                }
                const char quote = c;
                ++i;
                while (i < src.size()) {
                    if (src[i] == '\\')
                        ++i;
                    else if (src[i] == quote)
                        break;
                    ++i;
                }
                continue;
            }
            dst[i] = c;
        }

        if (!comment.empty()) {
            Suppression sup;
            if (parseSuppression(comment, sup)) {
                sup.standalone = trim(dst).empty();
                out.suppressions[static_cast<int>(li) + 1] = sup;
            }
        }
        out.code.push_back(dst);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Phase 2: tokenize the stripped code.
// ---------------------------------------------------------------------------

struct Token
{
    std::string text;
    int line = 0; ///< 1-based

    bool is(const char *s) const { return text == s; }
    bool ident() const { return !text.empty() && isIdentStart(text[0]); }
    bool number() const
    {
        return !text.empty() &&
               std::isdigit(static_cast<unsigned char>(text[0]));
    }
    /** A floating-point literal: 1.5, .5f, 1e9, 0x1.8p3 — but not 1'000. */
    bool
    floatLiteral() const
    {
        if (!number())
            return false;
        if (text.size() > 1 && text[1] == 'x')
            return text.find('.') != std::string::npos ||
                   text.find('p') != std::string::npos ||
                   text.find('P') != std::string::npos;
        return text.find('.') != std::string::npos ||
               text.find('e') != std::string::npos ||
               text.find('E') != std::string::npos ||
               text.back() == 'f' || text.back() == 'F';
    }
};

std::vector<Token>
tokenize(const std::vector<std::string> &code)
{
    std::vector<Token> out;
    for (std::size_t li = 0; li < code.size(); ++li) {
        const std::string &s = code[li];
        const int line = static_cast<int>(li) + 1;
        for (std::size_t i = 0; i < s.size();) {
            const char c = s[i];
            if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
                continue;
            }
            if (isIdentStart(c)) {
                std::size_t j = i + 1;
                while (j < s.size() && isIdentChar(s[j]))
                    ++j;
                out.push_back({s.substr(i, j - i), line});
                i = j;
                continue;
            }
            if (std::isdigit(static_cast<unsigned char>(c))) {
                std::size_t j = i + 1;
                while (j < s.size() &&
                       (isIdentChar(s[j]) || s[j] == '.' || s[j] == '\'' ||
                        ((s[j] == '+' || s[j] == '-') &&
                         (s[j - 1] == 'e' || s[j - 1] == 'E' ||
                          s[j - 1] == 'p' || s[j - 1] == 'P'))))
                    ++j;
                out.push_back({s.substr(i, j - i), line});
                i = j;
                continue;
            }
            // Multi-char punctuation the rules care about.
            if (i + 1 < s.size()) {
                const char n = s[i + 1];
                if ((c == ':' && n == ':') || (c == '-' && n == '>') ||
                    (c == '[' && n == '[') || (c == ']' && n == ']')) {
                    out.push_back({s.substr(i, 2), line});
                    i += 2;
                    continue;
                }
            }
            out.push_back({std::string(1, c), line});
            ++i;
        }
    }
    return out;
}

/** Index of the matching close for the opener at @p open, or npos. */
std::size_t
matchForward(const std::vector<Token> &t, std::size_t open,
             const char *openSym, const char *closeSym)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (t[i].is(openSym))
            ++depth;
        else if (t[i].is(closeSym) && --depth == 0)
            return i;
    }
    return std::string::npos;
}

// ---------------------------------------------------------------------------
// Rule engine plumbing
// ---------------------------------------------------------------------------

struct FileCtx
{
    const Source *source = nullptr;
    StrippedFile stripped;
    std::vector<Token> tokens;
};

struct Sink
{
    const std::string *path = nullptr;
    std::vector<Finding> *out = nullptr;

    void
    add(int line, const std::string &rule, const std::string &message) const
    {
        out->push_back({*path, line, rule, Severity::Error, message});
    }
};

const std::set<std::string> &
wallClockIdents()
{
    static const std::set<std::string> names = {
        "steady_clock",  "system_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "localtime",     "gmtime",        "mktime",
    };
    return names;
}

const std::set<std::string> &
rawRandIdents()
{
    static const std::set<std::string> names = {
        "random_device", "mt19937",      "mt19937_64",
        "default_random_engine", "minstd_rand", "minstd_rand0",
        "knuth_b",       "ranlux24",     "ranlux48",
    };
    return names;
}

// --- wall-clock ------------------------------------------------------------

void
ruleWallClock(const FileCtx &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident())
            continue;
        if (wallClockIdents().count(t[i].text)) {
            sink.add(t[i].line, "wall-clock",
                     "'" + t[i].text + "' reads host time; simulations "
                     "must use sim::Simulator::now()");
            continue;
        }
        const bool call = i + 1 < t.size() && t[i + 1].is("(");
        if (call && (t[i].is("time") || t[i].is("clock"))) {
            sink.add(t[i].line, "wall-clock",
                     "'" + t[i].text + "()' reads host time; simulations "
                     "must use sim::Simulator::now()");
        }
    }
}

// --- raw-rand ---------------------------------------------------------------

void
ruleRawRand(const FileCtx &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident())
            continue;
        if (rawRandIdents().count(t[i].text)) {
            sink.add(t[i].line, "raw-rand",
                     "'" + t[i].text + "' is unseeded/implementation-"
                     "defined; use the seeded smartds::Rng "
                     "(src/common/random.h)");
            continue;
        }
        const bool call = i + 1 < t.size() && t[i + 1].is("(");
        if (call && (t[i].is("rand") || t[i].is("srand"))) {
            sink.add(t[i].line, "raw-rand",
                     "'" + t[i].text + "()' is not seed-deterministic; "
                     "use the seeded smartds::Rng (src/common/random.h)");
        }
    }
}

// --- unordered-iter ---------------------------------------------------------

/**
 * Collect, across the whole source set, identifiers declared with an
 * unordered container type (including one level of using-alias
 * indirection). Iterating such a container visits hash order, which
 * varies with seed/ASLR/libstdc++ version — any visit-order-dependent
 * result is a nondeterminism bug.
 */
struct UnorderedIndex
{
    std::set<std::string> vars;
    std::set<std::string> aliases;
};

void
collectUnorderedDecls(const std::vector<Token> &t, UnorderedIndex &index)
{
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].is("unordered_map") && !t[i].is("unordered_set") &&
            !t[i].is("unordered_multimap") && !t[i].is("unordered_multiset"))
            continue;
        if (i + 1 >= t.size() || !t[i + 1].is("<"))
            continue;

        // `using Name = std::unordered_map<...>` / `typedef ... Name;`
        // record the alias; a second sweep resolves variables of alias
        // type.
        std::size_t back = i;
        while (back > 0 && !t[back - 1].is(";") && !t[back - 1].is("{") &&
               !t[back - 1].is("}"))
            --back;
        bool isUsing = false, isTypedef = false;
        std::string usingName;
        for (std::size_t j = back; j < i; ++j) {
            if (t[j].is("using") && j + 1 < i && t[j + 1].ident())
                usingName = t[j + 1].text, isUsing = true;
            if (t[j].is("typedef"))
                isTypedef = true;
        }

        const std::size_t close = matchForward(t, i + 1, "<", ">");
        if (close == std::string::npos)
            continue;
        std::size_t j = close + 1;
        while (j < t.size() &&
               (t[j].is("&") || t[j].is("*") || t[j].is("const")))
            ++j;
        if (j >= t.size() || !t[j].ident())
            continue;
        if (isUsing) {
            index.aliases.insert(usingName);
            continue;
        }
        if (isTypedef) {
            index.aliases.insert(t[j].text);
            continue;
        }
        // Function returning an unordered container — not a variable.
        if (j + 1 < t.size() && t[j + 1].is("("))
            continue;
        index.vars.insert(t[j].text);
        // Comma-separated declarators: `map<K,V> a, b;`
        while (j + 1 < t.size() && t[j + 1].is(",") && j + 2 < t.size() &&
               t[j + 2].ident()) {
            index.vars.insert(t[j + 2].text);
            j += 2;
        }
    }
}

void
collectAliasVars(const std::vector<Token> &t, UnorderedIndex &index)
{
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].ident() && index.aliases.count(t[i].text) &&
            t[i + 1].ident() &&
            (i + 2 >= t.size() || !t[i + 2].is("(")))
            index.vars.insert(t[i + 1].text);
    }
}

void
ruleUnorderedIter(const FileCtx &ctx, const UnorderedIndex &index,
                  const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].is("for") || !t[i + 1].is("("))
            continue;
        const std::size_t close = matchForward(t, i + 1, "(", ")");
        if (close == std::string::npos)
            continue;
        // Range-for: a ':' at parenthesis depth 1.
        std::size_t colon = std::string::npos;
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (t[j].is("("))
                ++depth;
            else if (t[j].is(")"))
                --depth;
            else if (t[j].is(":") && depth == 1) {
                colon = j;
                break;
            }
        }
        if (colon != std::string::npos) {
            for (std::size_t j = colon + 1; j < close; ++j) {
                const std::string &name = t[j].text;
                if (t[j].ident() &&
                    (index.vars.count(name) ||
                     name.rfind("unordered_", 0) == 0)) {
                    sink.add(t[i].line, "unordered-iter",
                             "range-for over unordered container '" +
                                 name + "' visits hash order; use "
                                 "std::map or a sorted vector if any "
                                 "result depends on visit order");
                    break;
                }
            }
            continue;
        }
        // Iterator-style: `ident.begin()` / `ident->begin()` in header.
        for (std::size_t j = i + 2; j + 2 < close; ++j) {
            if (t[j].ident() && index.vars.count(t[j].text) &&
                (t[j + 1].is(".") || t[j + 1].is("->")) &&
                t[j + 2].is("begin")) {
                sink.add(t[i].line, "unordered-iter",
                         "iterator loop over unordered container '" +
                             t[j].text + "' visits hash order; use "
                             "std::map or a sorted vector if any result "
                             "depends on visit order");
                break;
            }
        }
    }
}

// --- mutable-global ---------------------------------------------------------

bool
spanHasConst(const std::vector<Token> &t, std::size_t b, std::size_t e)
{
    for (std::size_t j = b; j < e; ++j)
        if (t[j].is("const") || t[j].is("constexpr") ||
            t[j].is("constinit") || t[j].is("consteval"))
            return true;
    return false;
}

/** Whether [b,e) looks like a function declaration: `ident (` with no
 *  preceding `=` (an initializer call like `int x = f();` is not). */
bool
spanIsFunction(const std::vector<Token> &t, std::size_t b, std::size_t e)
{
    for (std::size_t j = b; j + 1 < e; ++j) {
        if (t[j].is("="))
            return false;
        if ((t[j].ident() || t[j].is("]")) && t[j + 1].is("("))
            return !t[j].is("alignas") && !t[j].is("decltype") &&
                   !t[j].is("sizeof");
    }
    return false;
}

void
ruleMutableGlobal(const FileCtx &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    std::vector<char> scopes; // 'n' namespace, 'c' class, 'o' other
    std::size_t stmtStart = 0;
    int parenDepth = 0;

    auto atNsScope = [&]() {
        for (const char s : scopes)
            if (s != 'n')
                return false;
        return true;
    };
    auto declEnd = [&](std::size_t from) {
        int pd = 0;
        for (std::size_t j = from; j < t.size(); ++j) {
            if (t[j].is("("))
                ++pd;
            else if (t[j].is(")"))
                --pd;
            else if (pd == 0 &&
                     (t[j].is(";") || t[j].is("{") || t[j].is("}")))
                return j;
        }
        return t.size();
    };

    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].is("("))
            ++parenDepth;
        else if (t[i].is(")"))
            --parenDepth;
        else if (t[i].is("{")) {
            char kind = 'o';
            bool sawEq = false;
            for (std::size_t j = stmtStart; j < i; ++j) {
                if (t[j].is("="))
                    sawEq = true;
                else if (t[j].is("namespace"))
                    kind = 'n';
                else if (!sawEq && (t[j].is("class") || t[j].is("struct") ||
                                    t[j].is("union") || t[j].is("enum")))
                    kind = 'c';
            }
            if (sawEq && kind != 'n')
                kind = 'o'; // brace initializer, not a scope worth naming
            scopes.push_back(kind);
            stmtStart = i + 1;
            continue;
        } else if (t[i].is("}")) {
            if (!scopes.empty())
                scopes.pop_back();
            stmtStart = i + 1;
            continue;
        } else if (t[i].is(";") && parenDepth == 0) {
            stmtStart = i + 1;
            continue;
        }

        // (a) `static` mutable state at any scope (function-local,
        //     class-static data member, namespace scope).
        if (t[i].is("static") && parenDepth == 0) {
            const std::size_t end = declEnd(i);
            if (!spanHasConst(t, i, end) && !spanIsFunction(t, i, end)) {
                std::string name;
                for (std::size_t j = i + 1; j < end; ++j) {
                    if (t[j].is("=") || t[j].is("{"))
                        break;
                    if (t[j].ident())
                        name = t[j].text;
                }
                if (!name.empty())
                    sink.add(t[i].line, "mutable-global",
                             "mutable static '" + name + "' is shared "
                             "state across Simulator instances; thread "
                             "it through the owning object instead");
            }
            // Resume just before the terminator so the brace/semicolon
            // handlers above keep the scope stack balanced.
            i = end == t.size() ? end : end - 1;
            continue;
        }

        // (b) bare namespace-scope variable declarations.
        if (i == stmtStart && atNsScope() && t[i].ident() &&
            parenDepth == 0) {
            static const std::set<std::string> skipLead = {
                "using",  "typedef",  "namespace", "template", "extern",
                "friend", "struct",   "class",     "union",    "enum",
                "public", "private",  "protected", "operator",
                "if",     "for",      "while",     "return",   "switch",
            };
            const std::size_t end = declEnd(i);
            if (end < t.size() && t[end].is(";")) {
                bool skip = skipLead.count(t[i].text) ||
                            spanHasConst(t, i, end) ||
                            spanIsFunction(t, i, end);
                std::size_t idents = 0;
                std::string name;
                for (std::size_t j = i; j < end && !skip; ++j) {
                    if (t[j].is("(") || t[j].is("operator") ||
                        skipLead.count(t[j].text))
                        skip = true;
                    if (t[j].is("="))
                        break;
                    if (t[j].ident() && !t[j].is("std") && !t[j].is("inline"))
                        ++idents, name = t[j].text;
                }
                if (!skip && idents >= 2)
                    sink.add(t[i].line, "mutable-global",
                             "non-const global '" + name + "' breaks "
                             "run-to-run determinism and concurrent "
                             "sweeps; make it const or move it into the "
                             "owning object");
                i = end - 1;
                continue;
            }
        }
    }
}

// --- raw-io -----------------------------------------------------------------

void
ruleRawIo(const FileCtx &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident())
            continue;
        const bool call = i + 1 < t.size() && t[i + 1].is("(");
        if (call && (t[i].is("printf") || t[i].is("puts") ||
                     t[i].is("putchar") || t[i].is("vprintf"))) {
            sink.add(t[i].line, "raw-io",
                     "'" + t[i].text + "' writes raw stdout; route "
                     "output through common/logging (inform/warn) so it "
                     "respects quiet mode and does not interleave under "
                     "parallel sweeps");
            continue;
        }
        if (call && t[i].is("fprintf") && i + 2 < t.size() &&
            (t[i + 2].is("stdout") || t[i + 2].is("stderr"))) {
            sink.add(t[i].line, "raw-io",
                     "'fprintf(" + t[i + 2].text + ", ...)' bypasses "
                     "common/logging; use inform/warn instead");
            continue;
        }
        if ((t[i].is("cout") || t[i].is("cerr") || t[i].is("clog")) &&
            i >= 1 && t[i - 1].is("::") && i >= 2 && t[i - 2].is("std")) {
            sink.add(t[i].line, "raw-io",
                     "'std::" + t[i].text + "' bypasses common/logging; "
                     "use inform/warn (or the bench harness) instead");
        }
    }
}

// --- naked-new --------------------------------------------------------------

void
ruleNakedNew(const FileCtx &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].is("new"))
            continue;
        // Placement new (`new (addr) T`, `::new (addr) T`) does not own.
        if (i + 1 < t.size() && t[i + 1].is("("))
            continue;
        if (i >= 1 && t[i - 1].is("::"))
            continue;
        // A `new` whose full statement hands ownership to a smart
        // pointer is managed, not naked.
        std::size_t b = i;
        while (b > 0 && !t[b - 1].is(";") && !t[b - 1].is("{") &&
               !t[b - 1].is("}"))
            --b;
        std::size_t e = i;
        while (e < t.size() && !t[e].is(";") && !t[e].is("{"))
            ++e;
        bool managed = false;
        for (std::size_t j = b; j < e; ++j) {
            if (t[j].is("unique_ptr") || t[j].is("shared_ptr") ||
                t[j].is("make_unique") || t[j].is("make_shared") ||
                t[j].is("reset")) {
                managed = true;
                break;
            }
        }
        if (!managed)
            sink.add(t[i].line, "naked-new",
                     "naked owning 'new' in the datapath; use "
                     "std::make_unique/make_shared or a pool");
    }
}

// --- tick-float -------------------------------------------------------------

/**
 * Whether [b,e) contains float-typed tokens. With @p topLevelOnly, only
 * tokens outside nested parentheses count — a float literal passed as a
 * function *argument* (`run(0.0)`) is not float arithmetic on the
 * result.
 */
bool
spanHasFloatiness(const std::vector<Token> &t, std::size_t b, std::size_t e,
                  bool topLevelOnly = false)
{
    int depth = 0;
    for (std::size_t j = b; j < e; ++j) {
        if (t[j].is("("))
            ++depth;
        else if (t[j].is(")"))
            --depth;
        else if ((!topLevelOnly || depth == 0) &&
                 (t[j].floatLiteral() || t[j].is("double") ||
                  t[j].is("float")))
            return true;
    }
    return false;
}

void
ruleTickFloat(const FileCtx &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        // static_cast<Tick>(<float-tainted expr>)
        if (t[i].is("static_cast") && i + 4 < t.size() && t[i + 1].is("<") &&
            (t[i + 2].is("Tick") || t[i + 2].is("TickDelta")) &&
            t[i + 3].is(">") && t[i + 4].is("(")) {
            const std::size_t close = matchForward(t, i + 4, "(", ")");
            if (close != std::string::npos &&
                spanHasFloatiness(t, i + 5, close)) {
                sink.add(t[i].line, "tick-float",
                         "float arithmetic narrowed into a Tick; "
                         "rounding can reorder events across platforms "
                         "— compute ticks in integers (see "
                         "common/time.h)");
            }
            continue;
        }
        // `Tick name = <expr with float literal>;`
        if ((t[i].is("Tick") || t[i].is("TickDelta")) && i + 2 < t.size() &&
            t[i + 1].ident() && t[i + 2].is("=")) {
            std::size_t e = i + 3;
            while (e < t.size() && !t[e].is(";"))
                ++e;
            bool casted = false;
            for (std::size_t j = i + 3; j < e; ++j)
                if (t[j].is("static_cast"))
                    casted = true; // the cast form above already covers it
            if (!casted && spanHasFloatiness(t, i + 3, e, true))
                sink.add(t[i].line, "tick-float",
                         "Tick '" + t[i + 1].text + "' initialized from "
                         "float arithmetic; compute ticks in integers "
                         "(see common/time.h)");
        }
    }
}

// --- missing-nodiscard ------------------------------------------------------

void
ruleMissingNodiscard(const FileCtx &ctx, const Sink &sink)
{
    const std::string &path = *sink.path;
    if (path.size() < 2 || path.compare(path.size() - 2, 2, ".h") != 0)
        return; // declarations live in headers; definitions repeat them
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].is("optional") || i + 1 >= t.size() || !t[i + 1].is("<"))
            continue;
        const std::size_t close = matchForward(t, i + 1, "<", ">");
        if (close == std::string::npos)
            continue;
        std::size_t j = close + 1;
        if (j + 1 >= t.size() || !t[j].ident() || !t[j + 1].is("("))
            continue; // not a function declaration returning optional
        // Scan back over the declaration for a [[nodiscard]] attribute.
        std::size_t b = i;
        while (b > 0 && !t[b - 1].is(";") && !t[b - 1].is("{") &&
               !t[b - 1].is("}") && !t[b - 1].is(":"))
            --b;
        bool nodiscard = false;
        for (std::size_t k = b; k < i; ++k)
            if (t[k].is("nodiscard"))
                nodiscard = true;
        if (!nodiscard)
            sink.add(t[i].line, "missing-nodiscard",
                     "'" + t[j].text + "' returns std::optional (an "
                     "error signal); declare it [[nodiscard]] so "
                     "callers cannot silently drop failures");
    }
}

// --- block-copy -------------------------------------------------------------

/**
 * SyntheticCorpus::sampleBlock() materialises a fresh vector copy of a
 * corpus block on every call. That is fine in tests and examples, but on
 * the functional datapath it defeats the zero-copy design: block bytes
 * are meant to be handed out as aliased shared_ptrs into the corpus
 * block cache (sampleBlockPtr()/sampleBlockIndex() + BlockCodecCache).
 */
void
ruleBlockCopy(const FileCtx &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].ident() || !t[i].is("sampleBlock"))
            continue;
        if (!t[i + 1].is("("))
            continue;
        sink.add(t[i].line, "block-copy",
                 "'sampleBlock()' copies a corpus block per call; "
                 "datapath code must use sampleBlockPtr()/"
                 "sampleBlockIndex() or the BlockCodecCache's zero-copy "
                 "entries");
    }
}

// --- zipf-approx ------------------------------------------------------------

/**
 * Rng::zipfApprox() is a biased two-branch approximation kept only so
 * legacy address streams (and the CSV baselines derived from them) stay
 * byte-identical. New code drawing skewed indices must use Rng::zipf(),
 * the exact bounded rejection-inversion sampler.
 */
void
ruleZipfApprox(const FileCtx &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].ident() || !t[i].is("zipfApprox"))
            continue;
        if (!t[i + 1].is("("))
            continue;
        sink.add(t[i].line, "zipf-approx",
                 "'zipfApprox()' is a biased legacy approximation kept "
                 "only for byte-identical replay of old address "
                 "streams; draw skewed indices with Rng::zipf(), the "
                 "exact rejection-inversion sampler");
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> rules = {
        "wall-clock",     "raw-rand",       "unordered-iter",
        "mutable-global", "raw-io",         "naked-new",
        "tick-float",     "missing-nodiscard", "block-copy",
        "zipf-approx",    "bad-suppression",
    };
    return rules;
}

namespace {

bool
pathHasPrefix(std::string path, const std::string &prefix)
{
    if (path.rfind("./", 0) == 0)
        path = path.substr(2);
    if (path == prefix)
        return true;
    return path.size() > prefix.size() && path.rfind(prefix, 0) == 0 &&
           (prefix.back() == '/' || path[prefix.size()] == '/');
}

} // namespace

Severity
Config::severityFor(const std::string &rule) const
{
    const auto it = rules.find(rule);
    return it == rules.end() ? Severity::Error : it->second.severity;
}

bool
Config::allowsPath(const std::string &rule, const std::string &path) const
{
    const auto it = rules.find(rule);
    if (it == rules.end())
        return false;
    for (const std::string &prefix : it->second.allow)
        if (pathHasPrefix(path, prefix))
            return true;
    return false;
}

bool
parseRulesConfig(const std::string &text, Config &config,
                 std::string &error)
{
    std::istringstream in(text);
    std::string line;
    std::string section;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string s = trim(line);
        if (s.empty() || s[0] == '#')
            continue;
        if (s.front() == '[') {
            if (s == "[lint]") {
                section = "@lint";
                continue;
            }
            if (s.back() != ']' || s.rfind("[rules.", 0) != 0) {
                error = "line " + std::to_string(lineNo) +
                        ": expected [lint] or [rules.<id>] section, got '" +
                        s + "'";
                return false;
            }
            section = s.substr(7, s.size() - 8);
            const auto &known = allRules();
            if (std::find(known.begin(), known.end(), section) ==
                known.end()) {
                error = "line " + std::to_string(lineNo) +
                        ": unknown rule '" + section + "'";
                return false;
            }
            config.rules[section]; // materialize with defaults
            continue;
        }
        const std::size_t eq = s.find('=');
        if (eq == std::string::npos || section.empty()) {
            error = "line " + std::to_string(lineNo) +
                    ": expected key = value inside a [rules.<id>] section";
            return false;
        }
        const std::string key = trim(s.substr(0, eq));
        const std::string value = trim(s.substr(eq + 1));
        auto parseStringArray = [&](std::vector<std::string> &out) {
            if (value.size() < 2 || value.front() != '[' ||
                value.back() != ']') {
                error = "line " + std::to_string(lineNo) + ": '" + key +
                        "' must be a [\"...\"] array on one line";
                return false;
            }
            std::string inside = value.substr(1, value.size() - 2);
            std::istringstream items(inside);
            std::string item;
            while (std::getline(items, item, ',')) {
                item = trim(item);
                if (item.size() >= 2 && item.front() == '"' &&
                    item.back() == '"')
                    out.push_back(item.substr(1, item.size() - 2));
                else if (!item.empty()) {
                    error = "line " + std::to_string(lineNo) + ": '" + key +
                            "' entries must be quoted strings";
                    return false;
                }
            }
            return true;
        };
        if (section == "@lint") {
            if (key != "exclude") {
                error = "line " + std::to_string(lineNo) +
                        ": [lint] only supports 'exclude'";
                return false;
            }
            if (!parseStringArray(config.exclude))
                return false;
            continue;
        }
        RuleConfig &rule = config.rules[section];
        if (key == "severity") {
            if (value == "\"off\"")
                rule.severity = Severity::Off;
            else if (value == "\"warn\"")
                rule.severity = Severity::Warn;
            else if (value == "\"error\"")
                rule.severity = Severity::Error;
            else {
                error = "line " + std::to_string(lineNo) +
                        ": severity must be \"off\", \"warn\" or "
                        "\"error\"";
                return false;
            }
        } else if (key == "allow") {
            if (!parseStringArray(rule.allow))
                return false;
        } else {
            error = "line " + std::to_string(lineNo) + ": unknown key '" +
                    key + "'";
            return false;
        }
    }
    return true;
}

std::vector<Finding>
lint(const std::vector<Source> &sources, const Config &config)
{
    std::vector<FileCtx> ctxs;
    ctxs.reserve(sources.size());
    UnorderedIndex index;
    for (const Source &src : sources) {
        bool excluded = false;
        for (const std::string &prefix : config.exclude)
            if (pathHasPrefix(src.path, prefix))
                excluded = true;
        if (excluded)
            continue;
        FileCtx ctx;
        ctx.source = &src;
        ctx.stripped = stripFile(src.text);
        ctx.tokens = tokenize(ctx.stripped.code);
        collectUnorderedDecls(ctx.tokens, index);
        ctxs.push_back(std::move(ctx));
    }
    for (const FileCtx &ctx : ctxs)
        collectAliasVars(ctx.tokens, index);

    std::vector<Finding> findings;
    for (const FileCtx &ctx : ctxs) {
        std::vector<Finding> raw;
        const Sink sink{&ctx.source->path, &raw};
        ruleWallClock(ctx, sink);
        ruleRawRand(ctx, sink);
        ruleUnorderedIter(ctx, index, sink);
        ruleMutableGlobal(ctx, sink);
        ruleRawIo(ctx, sink);
        ruleNakedNew(ctx, sink);
        ruleTickFloat(ctx, sink);
        ruleMissingNodiscard(ctx, sink);
        ruleBlockCopy(ctx, sink);
        ruleZipfApprox(ctx, sink);

        // Validate suppressions and build the (line -> rules) map.
        std::map<int, std::set<std::string>> allowed;
        for (const auto &[line, sup] : ctx.stripped.suppressions) {
            // A standalone suppression comment covers the next statement
            // that holds code — from the first code line through the line
            // that closes it — so multi-line justification comments and
            // multi-line statements both work.
            int target = line;
            int targetEnd = line;
            if (sup.standalone) {
                const auto &code = ctx.stripped.code;
                const int n = static_cast<int>(code.size());
                int next = line; // `line` is 1-based; code[line] is next
                while (next < n && trim(code[next]).empty())
                    ++next;
                target = next + 1;
                targetEnd = target;
                while (targetEnd <= n) {
                    const std::string t = trim(code[targetEnd - 1]);
                    if (!t.empty() &&
                        (t.back() == ';' || t.back() == '{' ||
                         t.back() == '}'))
                        break;
                    ++targetEnd;
                }
                if (targetEnd > n)
                    targetEnd = n;
            }
            bool ok = sup.justified && !sup.rules.empty();
            for (const std::string &rule : sup.rules) {
                const auto &known = allRules();
                if (std::find(known.begin(), known.end(), rule) ==
                    known.end())
                    ok = false;
                else
                    for (int covered = target; covered <= targetEnd;
                         ++covered)
                        allowed[covered].insert(rule);
            }
            if (!ok)
                raw.push_back(
                    {ctx.source->path, line, "bad-suppression",
                     Severity::Error,
                     sup.rules.empty()
                         ? "malformed suppression; use `// simlint: "
                           "allow(<rule>): <justification>`"
                         : (sup.justified
                                ? "suppression names an unknown rule"
                                : "suppression is missing its mandatory "
                                  "justification (`: <why this is "
                                  "safe>`)")});
        }

        for (Finding &f : raw) {
            const Severity sev = config.severityFor(f.rule);
            if (sev == Severity::Off)
                continue;
            if (config.allowsPath(f.rule, f.file))
                continue;
            const auto it = allowed.find(f.line);
            if (f.rule != "bad-suppression" && it != allowed.end() &&
                it->second.count(f.rule))
                continue;
            f.severity = sev;
            findings.push_back(std::move(f));
        }
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

std::string
renderText(const std::vector<Finding> &findings)
{
    std::string out;
    for (const Finding &f : findings) {
        out += f.file + ":" + std::to_string(f.line) + ": " +
               (f.severity == Severity::Warn ? "warning" : "error") + "[" +
               f.rule + "] " + f.message + "\n";
    }
    return out;
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += c; break;
        }
    }
    return out;
}

} // namespace

std::string
renderJson(const std::vector<Finding> &findings)
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out += "  {\"file\":\"" + jsonEscape(f.file) +
               "\",\"line\":" + std::to_string(f.line) + ",\"rule\":\"" +
               jsonEscape(f.rule) + "\",\"severity\":\"" +
               (f.severity == Severity::Warn ? "warning" : "error") +
               "\",\"message\":\"" + jsonEscape(f.message) + "\"}";
        out += i + 1 < findings.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
}

} // namespace simlint
