#include "linter.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>
#include <sstream>

#include "index.h"
#include "lexer.h"

namespace simlint {

namespace {

bool
pathHasPrefix(std::string path, const std::string &prefix)
{
    if (path.rfind("./", 0) == 0)
        path = path.substr(2);
    if (path == prefix)
        return true;
    return path.size() > prefix.size() && path.rfind(prefix, 0) == 0 &&
           (prefix.back() == '/' || path[prefix.size()] == '/');
}

/** The PDES shard-isolation gate: directories whose functions are the
 *  entry points of the shared-sim-state reachability analysis. */
const std::vector<std::string> &
simEntryDirs()
{
    static const std::vector<std::string> dirs = {
        "src/sim", "src/middletier", "src/net", "src/workload",
    };
    return dirs;
}

bool
inSimEntryDir(const std::string &path)
{
    for (const std::string &dir : simEntryDirs())
        if (pathHasPrefix(path, dir))
            return true;
    return false;
}

// ---------------------------------------------------------------------------
// Rule engine plumbing
// ---------------------------------------------------------------------------

struct Sink
{
    const std::string *path = nullptr;
    std::vector<Finding> *out = nullptr;

    void
    add(int line, const std::string &rule, const std::string &message) const
    {
        out->push_back({*path, line, rule, Severity::Error, message});
    }
};

const std::set<std::string> &
wallClockIdents()
{
    static const std::set<std::string> names = {
        "steady_clock",  "system_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "localtime",     "gmtime",        "mktime",
    };
    return names;
}

const std::set<std::string> &
rawRandIdents()
{
    static const std::set<std::string> names = {
        "random_device", "mt19937",      "mt19937_64",
        "default_random_engine", "minstd_rand", "minstd_rand0",
        "knuth_b",       "ranlux24",     "ranlux48",
    };
    return names;
}

// --- wall-clock ------------------------------------------------------------

void
ruleWallClock(const FileUnit &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident())
            continue;
        if (wallClockIdents().count(t[i].text)) {
            sink.add(t[i].line, "wall-clock",
                     "'" + t[i].text + "' reads host time; simulations "
                     "must use sim::Simulator::now()");
            continue;
        }
        const bool call = i + 1 < t.size() && t[i + 1].is("(");
        if (call && (t[i].is("time") || t[i].is("clock"))) {
            sink.add(t[i].line, "wall-clock",
                     "'" + t[i].text + "()' reads host time; simulations "
                     "must use sim::Simulator::now()");
        }
    }
}

// --- raw-rand ---------------------------------------------------------------

void
ruleRawRand(const FileUnit &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident())
            continue;
        if (rawRandIdents().count(t[i].text)) {
            sink.add(t[i].line, "raw-rand",
                     "'" + t[i].text + "' is unseeded/implementation-"
                     "defined; use the seeded smartds::Rng "
                     "(src/common/random.h)");
            continue;
        }
        const bool call = i + 1 < t.size() && t[i + 1].is("(");
        if (call && (t[i].is("rand") || t[i].is("srand"))) {
            sink.add(t[i].line, "raw-rand",
                     "'" + t[i].text + "()' is not seed-deterministic; "
                     "use the seeded smartds::Rng (src/common/random.h)");
        }
    }
}

// --- unordered-iter ---------------------------------------------------------

/**
 * Collect, across the whole source set, identifiers declared with an
 * unordered container type (including one level of using-alias
 * indirection). Iterating such a container visits hash order, which
 * varies with seed/ASLR/libstdc++ version — any visit-order-dependent
 * result is a nondeterminism bug.
 */
struct UnorderedIndex
{
    std::set<std::string> vars;
    std::set<std::string> aliases;
};

void
collectUnorderedDecls(const std::vector<Token> &t, UnorderedIndex &index)
{
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].is("unordered_map") && !t[i].is("unordered_set") &&
            !t[i].is("unordered_multimap") && !t[i].is("unordered_multiset"))
            continue;
        if (i + 1 >= t.size() || !t[i + 1].is("<"))
            continue;

        // `using Name = std::unordered_map<...>` / `typedef ... Name;`
        // record the alias; a second sweep resolves variables of alias
        // type.
        std::size_t back = i;
        while (back > 0 && !t[back - 1].is(";") && !t[back - 1].is("{") &&
               !t[back - 1].is("}"))
            --back;
        bool isUsing = false, isTypedef = false;
        std::string usingName;
        for (std::size_t j = back; j < i; ++j) {
            if (t[j].is("using") && j + 1 < i && t[j + 1].ident())
                usingName = t[j + 1].text, isUsing = true;
            if (t[j].is("typedef"))
                isTypedef = true;
        }

        const std::size_t close = matchForward(t, i + 1, "<", ">");
        if (close == std::string::npos)
            continue;
        std::size_t j = close + 1;
        while (j < t.size() &&
               (t[j].is("&") || t[j].is("*") || t[j].is("const")))
            ++j;
        if (j >= t.size() || !t[j].ident())
            continue;
        if (isUsing) {
            index.aliases.insert(usingName);
            continue;
        }
        if (isTypedef) {
            index.aliases.insert(t[j].text);
            continue;
        }
        // Function returning an unordered container — not a variable.
        if (j + 1 < t.size() && t[j + 1].is("("))
            continue;
        index.vars.insert(t[j].text);
        // Comma-separated declarators: `map<K,V> a, b;`
        while (j + 1 < t.size() && t[j + 1].is(",") && j + 2 < t.size() &&
               t[j + 2].ident()) {
            index.vars.insert(t[j + 2].text);
            j += 2;
        }
    }
}

void
collectAliasVars(const std::vector<Token> &t, UnorderedIndex &index)
{
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].ident() && index.aliases.count(t[i].text) &&
            t[i + 1].ident() &&
            (i + 2 >= t.size() || !t[i + 2].is("(")))
            index.vars.insert(t[i + 1].text);
    }
}

void
ruleUnorderedIter(const FileUnit &ctx, const UnorderedIndex &index,
                  const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].is("for") || !t[i + 1].is("("))
            continue;
        const std::size_t close = matchForward(t, i + 1, "(", ")");
        if (close == std::string::npos)
            continue;
        // Range-for: a ':' at parenthesis depth 1.
        std::size_t colon = std::string::npos;
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (t[j].is("("))
                ++depth;
            else if (t[j].is(")"))
                --depth;
            else if (t[j].is(":") && depth == 1) {
                colon = j;
                break;
            }
        }
        if (colon != std::string::npos) {
            for (std::size_t j = colon + 1; j < close; ++j) {
                const std::string &name = t[j].text;
                if (t[j].ident() &&
                    (index.vars.count(name) ||
                     name.rfind("unordered_", 0) == 0)) {
                    sink.add(t[i].line, "unordered-iter",
                             "range-for over unordered container '" +
                                 name + "' visits hash order; use "
                                 "std::map or a sorted vector if any "
                                 "result depends on visit order");
                    break;
                }
            }
            continue;
        }
        // Iterator-style: `ident.begin()` / `ident->begin()` in header.
        for (std::size_t j = i + 2; j + 2 < close; ++j) {
            if (t[j].ident() && index.vars.count(t[j].text) &&
                (t[j + 1].is(".") || t[j + 1].is("->")) &&
                t[j + 2].is("begin")) {
                sink.add(t[i].line, "unordered-iter",
                         "iterator loop over unordered container '" +
                             t[j].text + "' visits hash order; use "
                             "std::map or a sorted vector if any result "
                             "depends on visit order");
                break;
            }
        }
    }
}

// --- mutable-global (index-backed) -----------------------------------------

/**
 * Per-file view of the cross-TU symbol pass: every mutable static /
 * namespace-scope variable is a finding at its declaration. The
 * shared-sim-state rule reports the same declarations when they are
 * reachable from the simulation — rules.toml path-allows this rule
 * inside the entry directories so the sharper rule supersedes it there.
 */
void
ruleMutableGlobal(const SymbolIndex &index,
                  std::map<std::string, std::vector<Finding>> &byFile)
{
    for (const MutableState &m : index.mutables) {
        const std::string message =
            m.staticKeyword
                ? "mutable static '" + m.name + "' is shared state "
                  "across Simulator instances; thread it through the "
                  "owning object instead"
                : "non-const global '" + m.name + "' breaks run-to-run "
                  "determinism and concurrent sweeps; make it const or "
                  "move it into the owning object";
        byFile[m.file].push_back(
            {m.file, m.line, "mutable-global", Severity::Error, message});
    }
}

// --- shared-sim-state -------------------------------------------------------

/**
 * The PDES shard-isolation gate. Roots are all functions defined under
 * the simulation entry directories; reachability follows the
 * name-based call graph. A mutable static / global is a finding when it
 * is (a) declared inside an entry directory, (b) a function-local
 * static whose owning function is reached, or (c) a namespace/class
 * static referenced inside any reached function. Name-based matching
 * over-approximates — the conservative direction for a safety gate.
 */
void
ruleSharedSimState(const SymbolIndex &index,
                   std::map<std::string, std::vector<Finding>> &byFile)
{
    std::set<std::string> roots;
    for (const auto &[name, defs] : index.functions)
        for (const FunctionDef &def : defs)
            if (inSimEntryDir(def.file))
                roots.insert(name);
    const std::map<std::string, std::string> reached =
        reachableFunctions(index, roots);

    // global name -> reached functions referencing it (deterministic
    // order: functions map is name-sorted, defs keep file order).
    std::map<std::string, std::vector<const FunctionDef *>> referencedBy;
    for (const auto &[name, defs] : index.functions)
        for (const FunctionDef &def : defs)
            for (const std::string &g : def.globalRefs)
                referencedBy[g].push_back(&def);

    for (const MutableState &m : index.mutables) {
        const bool inEntry = inSimEntryDir(m.file);
        std::string via, root;
        bool hit = inEntry;
        if (!hit && m.kind == MutableState::Kind::FunctionStatic) {
            const auto it = reached.find(m.owner);
            if (!m.owner.empty() && it != reached.end()) {
                hit = true;
                via = m.owner;
                root = it->second;
            }
        } else if (!hit) {
            const auto refs = referencedBy.find(m.name);
            if (refs != referencedBy.end()) {
                for (const FunctionDef *def : refs->second) {
                    const auto it = reached.find(def->name);
                    if (it != reached.end()) {
                        hit = true;
                        via = def->name;
                        root = it->second;
                        break;
                    }
                }
            }
        }
        if (!hit)
            continue;
        const char *kindWord =
            m.kind == MutableState::Kind::FunctionStatic
                ? "function-local static"
                : m.kind == MutableState::Kind::ClassStatic
                      ? "static data member"
                      : "namespace-scope state";
        std::string message;
        if (inEntry) {
            message = "mutable " + std::string(kindWord) + " '" + m.name +
                      "' is declared in a simulation entry directory; "
                      "PDES shard isolation needs per-Simulator ownership "
                      "— move it into the owning object, or suppress with "
                      "a justification if it is genuinely per-process";
        } else {
            message = "mutable " + std::string(kindWord) + " '" + m.name +
                      "' is transitively reachable from simulation entry "
                      "point '" + root + "' via '" + via + "'; PDES "
                      "shards cannot share it — key it per Simulator, or "
                      "suppress with a justification if it is genuinely "
                      "per-process";
        }
        byFile[m.file].push_back({m.file, m.line, "shared-sim-state",
                                  Severity::Error, std::move(message)});
    }
}

// --- ptr-keyed-container ----------------------------------------------------

/**
 * Containers keyed or ordered by raw pointer value iterate in
 * allocation-address order, which varies with ASLR/allocator state run
 * to run. An explicit extra template argument (comparator for ordered
 * containers, hasher for unordered ones) opts out: the author has taken
 * responsibility for determinism.
 */
void
rulePtrKeyedContainer(const FileUnit &ctx, const Sink &sink)
{
    static const std::set<std::string> shortNames = {
        "map", "set", "multimap", "multiset",
    };
    static const std::set<std::string> longNames = {
        "unordered_map", "unordered_set",
        "unordered_multimap", "unordered_multiset",
    };
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].ident() || !t[i + 1].is("<"))
            continue;
        const bool isShort = shortNames.count(t[i].text) != 0;
        const bool isLong = longNames.count(t[i].text) != 0;
        if (!isShort && !isLong)
            continue;
        // Bare `map`/`set` collide with local names; require `::map`.
        if (isShort && (i == 0 || !t[i - 1].is("::")))
            continue;
        const std::size_t close = matchForward(t, i + 1, "<", ">");
        if (close == std::string::npos)
            continue;
        bool ptrInKey = false;
        std::size_t args = 1;
        int depth = 0;
        for (std::size_t j = i + 2; j < close; ++j) {
            if (t[j].is("<") || t[j].is("("))
                ++depth;
            else if (t[j].is(">") || t[j].is(")"))
                --depth;
            else if (depth == 0 && t[j].is(","))
                ++args;
            else if (args == 1 && t[j].is("*"))
                ptrInKey = true;
        }
        if (!ptrInKey)
            continue;
        const bool isMap = t[i].text.find("map") != std::string::npos;
        const std::size_t defaultArgs = isMap ? 2 : 1;
        if (args > defaultArgs)
            continue; // explicit comparator / hasher supplied
        sink.add(t[i].line, "ptr-keyed-container",
                 "'" + t[i].text + "' keyed by pointer value; visit "
                 "order follows allocation addresses and varies run to "
                 "run — key by a stable id, or supply an explicit "
                 "deterministic comparator");
    }
}

// --- event-handle-misuse ----------------------------------------------------

/**
 * Two shapes of event-lifetime bug:
 *  (a) cancelling (or querying) through a handle that was moved from —
 *      the moved-from handle no longer names the live generation;
 *  (b) storing a raw integer event slot index — slots are recycled, so
 *      a stale index silently cancels an unrelated event. Only fires in
 *      files that actually traffic in events (mention EventHandle or
 *      schedule/scheduleAt).
 */
void
ruleEventHandleMisuse(const FileUnit &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;

    bool mentionsEvents = false;
    for (const Token &tok : t) {
        if (tok.is("EventHandle") || tok.is("schedule") ||
            tok.is("scheduleAt")) {
            mentionsEvents = true;
            break;
        }
    }

    // (a) moved-from handle use. Track `std::move(name)` per brace
    // depth; a reassignment revives the name, leaving the scope kills
    // the record.
    std::map<std::string, int> moved; // name -> brace depth at the move
    int depth = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].is("{")) {
            ++depth;
            continue;
        }
        if (t[i].is("}")) {
            --depth;
            for (auto it = moved.begin(); it != moved.end();)
                it = it->second > depth ? moved.erase(it) : std::next(it);
            continue;
        }
        if (t[i].is("move") && i + 3 < t.size() && t[i + 1].is("(") &&
            t[i + 2].ident() && t[i + 3].is(")")) {
            moved[t[i + 2].text] = depth;
            continue;
        }
        if (!t[i].ident() || !moved.count(t[i].text))
            continue;
        // `name = ...` (not `==`/`!=`) revives the handle.
        if (i + 1 < t.size() && t[i + 1].is("=") &&
            (i + 2 >= t.size() || !t[i + 2].is("=")) &&
            (i == 0 || (!t[i - 1].is("=") && !t[i - 1].is("!") &&
                        !t[i - 1].is("<") && !t[i - 1].is(">")))) {
            moved.erase(t[i].text);
            continue;
        }
        if (i + 2 < t.size() && t[i + 1].is(".") &&
            (t[i + 2].is("cancel") || t[i + 2].is("pending"))) {
            sink.add(t[i].line, "event-handle-misuse",
                     "'" + t[i].text + "' was moved from; '" +
                     t[i + 2].text + "()' through a moved-from "
                     "EventHandle targets a dead generation — call it "
                     "before the move, or use the handle it moved into");
        }
    }

    // (b) raw integer slot storage.
    if (!mentionsEvents)
        return;
    static const std::set<std::string> intTypes = {
        "int",      "unsigned", "long",     "short",
        "int16_t",  "int32_t",  "int64_t",  "uint16_t",
        "uint32_t", "uint64_t", "size_t",   "ptrdiff_t",
    };
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!intTypes.count(t[i].text) || !t[i + 1].ident())
            continue;
        if (i > 0 && (t[i - 1].is(".") || t[i - 1].is("->")))
            continue;
        std::string lower = t[i + 1].text;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (lower.find("slot") == std::string::npos)
            continue;
        sink.add(t[i + 1].line, "event-handle-misuse",
                 "raw integer '" + t[i + 1].text + "' stores an event "
                 "slot index; slots are recycled, so a stale index "
                 "cancels an unrelated event — store the generation-"
                 "counted sim::EventHandle instead");
    }
}

// --- span-imbalance ---------------------------------------------------------

struct SpanInfo
{
    std::vector<int> openLines; ///< `.mark = <nonzero>` sites
    int closes = 0;             ///< `.mark = 0` sites
};

SpanInfo
collectSpans(const std::vector<Token> &t)
{
    SpanInfo info;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!(t[i].is(".") || t[i].is("->")) || !t[i + 1].is("mark") ||
            !t[i + 2].is("="))
            continue;
        // `mark ==` is a comparison, not an open/close.
        if (i + 3 < t.size() && t[i + 3].is("="))
            continue;
        if (i + 3 < t.size() && t[i + 3].is("0"))
            ++info.closes;
        else
            info.openLines.push_back(t[i + 1].line);
    }
    return info;
}

/**
 * A trace span is opened by writing a nonzero tick into a TraceContext
 * `mark` and closed by zeroing it after Tracer::record(). An open with
 * no close anywhere in the file or its direct include-graph neighbours
 * leaks the span: the next record() on that context measures from the
 * stale mark.
 */
void
ruleSpanImbalance(const std::vector<FileUnit> &units,
                  const SymbolIndex &index,
                  std::map<std::string, std::vector<Finding>> &byFile)
{
    std::map<std::string, SpanInfo> spans;
    for (const FileUnit &unit : units)
        spans[unit.path] = collectSpans(unit.tokens);

    for (const FileUnit &unit : units) {
        const SpanInfo &own = spans[unit.path];
        if (own.openLines.empty())
            continue;
        int closes = own.closes;
        auto addNeighbours = [&](const std::map<std::string,
                                                std::vector<std::string>>
                                     &edges) {
            const auto it = edges.find(unit.path);
            if (it == edges.end())
                return;
            for (const std::string &n : it->second)
                closes += spans[n].closes;
        };
        addNeighbours(index.includes);
        addNeighbours(index.includedBy);
        if (closes > 0)
            continue;
        for (const int line : own.openLines)
            byFile[unit.path].push_back(
                {unit.path, line, "span-imbalance", Severity::Error,
                 "trace span opened here (`mark = tick`) but never "
                 "closed (`mark = 0`) in this file or its direct "
                 "includes; the next Tracer::record() on this context "
                 "will measure from a stale mark"});
    }
}

// --- raw-io -----------------------------------------------------------------

void
ruleRawIo(const FileUnit &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].ident())
            continue;
        const bool call = i + 1 < t.size() && t[i + 1].is("(");
        if (call && (t[i].is("printf") || t[i].is("puts") ||
                     t[i].is("putchar") || t[i].is("vprintf"))) {
            sink.add(t[i].line, "raw-io",
                     "'" + t[i].text + "' writes raw stdout; route "
                     "output through common/logging (inform/warn) so it "
                     "respects quiet mode and does not interleave under "
                     "parallel sweeps");
            continue;
        }
        if (call && t[i].is("fprintf") && i + 2 < t.size() &&
            (t[i + 2].is("stdout") || t[i + 2].is("stderr"))) {
            sink.add(t[i].line, "raw-io",
                     "'fprintf(" + t[i + 2].text + ", ...)' bypasses "
                     "common/logging; use inform/warn instead");
            continue;
        }
        if ((t[i].is("cout") || t[i].is("cerr") || t[i].is("clog")) &&
            i >= 1 && t[i - 1].is("::") && i >= 2 && t[i - 2].is("std")) {
            sink.add(t[i].line, "raw-io",
                     "'std::" + t[i].text + "' bypasses common/logging; "
                     "use inform/warn (or the bench harness) instead");
        }
    }
}

// --- naked-new --------------------------------------------------------------

void
ruleNakedNew(const FileUnit &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].is("new"))
            continue;
        // Placement new (`new (addr) T`, `::new (addr) T`) does not own.
        if (i + 1 < t.size() && t[i + 1].is("("))
            continue;
        if (i >= 1 && t[i - 1].is("::"))
            continue;
        // A `new` whose full statement hands ownership to a smart
        // pointer is managed, not naked.
        std::size_t b = i;
        while (b > 0 && !t[b - 1].is(";") && !t[b - 1].is("{") &&
               !t[b - 1].is("}"))
            --b;
        std::size_t e = i;
        while (e < t.size() && !t[e].is(";") && !t[e].is("{"))
            ++e;
        bool managed = false;
        for (std::size_t j = b; j < e; ++j) {
            if (t[j].is("unique_ptr") || t[j].is("shared_ptr") ||
                t[j].is("make_unique") || t[j].is("make_shared") ||
                t[j].is("reset")) {
                managed = true;
                break;
            }
        }
        if (!managed)
            sink.add(t[i].line, "naked-new",
                     "naked owning 'new' in the datapath; use "
                     "std::make_unique/make_shared or a pool");
    }
}

// --- tick-float -------------------------------------------------------------

/**
 * Whether [b,e) contains float-typed tokens. With @p topLevelOnly, only
 * tokens outside nested parentheses count — a float literal passed as a
 * function *argument* (`run(0.0)`) is not float arithmetic on the
 * result.
 */
bool
spanHasFloatiness(const std::vector<Token> &t, std::size_t b, std::size_t e,
                  bool topLevelOnly = false)
{
    int depth = 0;
    for (std::size_t j = b; j < e; ++j) {
        if (t[j].is("("))
            ++depth;
        else if (t[j].is(")"))
            --depth;
        else if ((!topLevelOnly || depth == 0) &&
                 (t[j].floatLiteral() || t[j].is("double") ||
                  t[j].is("float")))
            return true;
    }
    return false;
}

void
ruleTickFloat(const FileUnit &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        // static_cast<Tick>(<float-tainted expr>)
        if (t[i].is("static_cast") && i + 4 < t.size() && t[i + 1].is("<") &&
            (t[i + 2].is("Tick") || t[i + 2].is("TickDelta")) &&
            t[i + 3].is(">") && t[i + 4].is("(")) {
            const std::size_t close = matchForward(t, i + 4, "(", ")");
            if (close != std::string::npos &&
                spanHasFloatiness(t, i + 5, close)) {
                sink.add(t[i].line, "tick-float",
                         "float arithmetic narrowed into a Tick; "
                         "rounding can reorder events across platforms "
                         "— compute ticks in integers (see "
                         "common/time.h)");
            }
            continue;
        }
        // `Tick name = <expr with float literal>;`
        if ((t[i].is("Tick") || t[i].is("TickDelta")) && i + 2 < t.size() &&
            t[i + 1].ident() && t[i + 2].is("=")) {
            std::size_t e = i + 3;
            while (e < t.size() && !t[e].is(";"))
                ++e;
            bool casted = false;
            for (std::size_t j = i + 3; j < e; ++j)
                if (t[j].is("static_cast"))
                    casted = true; // the cast form above already covers it
            if (!casted && spanHasFloatiness(t, i + 3, e, true))
                sink.add(t[i].line, "tick-float",
                         "Tick '" + t[i + 1].text + "' initialized from "
                         "float arithmetic; compute ticks in integers "
                         "(see common/time.h)");
        }
    }
}

// --- missing-nodiscard ------------------------------------------------------

void
ruleMissingNodiscard(const FileUnit &ctx, const Sink &sink)
{
    const std::string &path = ctx.path;
    if (path.size() < 2 || path.compare(path.size() - 2, 2, ".h") != 0)
        return; // declarations live in headers; definitions repeat them
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (!t[i].is("optional") || i + 1 >= t.size() || !t[i + 1].is("<"))
            continue;
        const std::size_t close = matchForward(t, i + 1, "<", ">");
        if (close == std::string::npos)
            continue;
        std::size_t j = close + 1;
        if (j + 1 >= t.size() || !t[j].ident() || !t[j + 1].is("("))
            continue; // not a function declaration returning optional
        // Scan back over the declaration for a [[nodiscard]] attribute.
        std::size_t b = i;
        while (b > 0 && !t[b - 1].is(";") && !t[b - 1].is("{") &&
               !t[b - 1].is("}") && !t[b - 1].is(":"))
            --b;
        bool nodiscard = false;
        for (std::size_t k = b; k < i; ++k)
            if (t[k].is("nodiscard"))
                nodiscard = true;
        if (!nodiscard)
            sink.add(t[i].line, "missing-nodiscard",
                     "'" + t[j].text + "' returns std::optional (an "
                     "error signal); declare it [[nodiscard]] so "
                     "callers cannot silently drop failures");
    }
}

// --- block-copy -------------------------------------------------------------

/**
 * SyntheticCorpus::sampleBlock() materialises a fresh vector copy of a
 * corpus block on every call. That is fine in tests and examples, but on
 * the functional datapath it defeats the zero-copy design: block bytes
 * are meant to be handed out as aliased shared_ptrs into the corpus
 * block cache (sampleBlockPtr()/sampleBlockIndex() + BlockCodecCache).
 */
void
ruleBlockCopy(const FileUnit &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].ident() || !t[i].is("sampleBlock"))
            continue;
        if (!t[i + 1].is("("))
            continue;
        sink.add(t[i].line, "block-copy",
                 "'sampleBlock()' copies a corpus block per call; "
                 "datapath code must use sampleBlockPtr()/"
                 "sampleBlockIndex() or the BlockCodecCache's zero-copy "
                 "entries");
    }
}

// --- zipf-approx ------------------------------------------------------------

/**
 * Rng::zipfApprox() is a biased two-branch approximation kept only so
 * legacy address streams (and the CSV baselines derived from them) stay
 * byte-identical. New code drawing skewed indices must use Rng::zipf(),
 * the exact bounded rejection-inversion sampler.
 */
void
ruleZipfApprox(const FileUnit &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].ident() || !t[i].is("zipfApprox"))
            continue;
        if (!t[i + 1].is("("))
            continue;
        sink.add(t[i].line, "zipf-approx",
                 "'zipfApprox()' is a biased legacy approximation kept "
                 "only for byte-identical replay of old address "
                 "streams; draw skewed indices with Rng::zipf(), the "
                 "exact rejection-inversion sampler");
    }
}

// --- cross-shard-state ------------------------------------------------------

/**
 * Scheduling straight onto another timing domain's simulator —
 * `cluster.domain(d).scheduleAt(...)` — bypasses the lookahead-checked
 * cross-domain channels. The event lands without the (tick, srcDomain,
 * seq) merge, so its position relative to genuinely channeled events
 * depends on which shard got there first: results stop being invariant
 * in the shard count, the property every PDES run is verified against.
 * Cross-domain work must go through ClusterSim::post() (or ride a
 * fabric message, which routes through post() itself).
 */
void
ruleCrossShardState(const FileUnit &ctx, const Sink &sink)
{
    const auto &t = ctx.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (!t[i].ident() || !t[i].is("domain"))
            continue;
        if (!t[i + 1].is("("))
            continue;
        const std::size_t close = matchForward(t, i + 1, "(", ")");
        if (close == std::string::npos || close + 2 >= t.size())
            continue;
        if (!t[close + 1].is(".") && !t[close + 1].is("->"))
            continue;
        if (!t[close + 2].is("schedule") && !t[close + 2].is("scheduleAt"))
            continue;
        if (close + 3 >= t.size() || !t[close + 3].is("("))
            continue;
        sink.add(t[i].line, "cross-shard-state",
                 "scheduling directly onto a timing domain fetched with "
                 "domain(d) bypasses the lookahead-checked cross-domain "
                 "channels; the event skips the (tick, srcDomain, seq) "
                 "merge and results stop being shard-count invariant — "
                 "use ClusterSim::post() (or a fabric message)");
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> rules = {
        "wall-clock",       "raw-rand",          "unordered-iter",
        "mutable-global",   "shared-sim-state",  "ptr-keyed-container",
        "event-handle-misuse", "span-imbalance",
        "raw-io",           "naked-new",         "tick-float",
        "missing-nodiscard", "block-copy",       "zipf-approx",
        "cross-shard-state", "bad-suppression",
    };
    return rules;
}

Severity
Config::severityFor(const std::string &rule) const
{
    const auto it = rules.find(rule);
    return it == rules.end() ? Severity::Error : it->second.severity;
}

bool
Config::allowsPath(const std::string &rule, const std::string &path) const
{
    const auto it = rules.find(rule);
    if (it == rules.end())
        return false;
    for (const std::string &prefix : it->second.allow)
        if (pathHasPrefix(path, prefix))
            return true;
    return false;
}

bool
parseRulesConfig(const std::string &text, Config &config,
                 std::string &error)
{
    std::istringstream in(text);
    std::string line;
    std::string section;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string s = trim(line);
        if (s.empty() || s[0] == '#')
            continue;
        if (s.front() == '[') {
            if (s == "[lint]") {
                section = "@lint";
                continue;
            }
            if (s.back() != ']' || s.rfind("[rules.", 0) != 0) {
                error = "line " + std::to_string(lineNo) +
                        ": expected [lint] or [rules.<id>] section, got '" +
                        s + "'";
                return false;
            }
            section = s.substr(7, s.size() - 8);
            const auto &known = allRules();
            if (std::find(known.begin(), known.end(), section) ==
                known.end()) {
                error = "line " + std::to_string(lineNo) +
                        ": unknown rule '" + section + "'";
                return false;
            }
            config.rules[section]; // materialize with defaults
            continue;
        }
        const std::size_t eq = s.find('=');
        if (eq == std::string::npos || section.empty()) {
            error = "line " + std::to_string(lineNo) +
                    ": expected key = value inside a [rules.<id>] section";
            return false;
        }
        const std::string key = trim(s.substr(0, eq));
        const std::string value = trim(s.substr(eq + 1));
        auto parseStringArray = [&](std::vector<std::string> &out) {
            if (value.size() < 2 || value.front() != '[' ||
                value.back() != ']') {
                error = "line " + std::to_string(lineNo) + ": '" + key +
                        "' must be a [\"...\"] array on one line";
                return false;
            }
            std::string inside = value.substr(1, value.size() - 2);
            std::istringstream items(inside);
            std::string item;
            while (std::getline(items, item, ',')) {
                item = trim(item);
                if (item.size() >= 2 && item.front() == '"' &&
                    item.back() == '"')
                    out.push_back(item.substr(1, item.size() - 2));
                else if (!item.empty()) {
                    error = "line " + std::to_string(lineNo) + ": '" + key +
                            "' entries must be quoted strings";
                    return false;
                }
            }
            return true;
        };
        if (section == "@lint") {
            if (key != "exclude") {
                error = "line " + std::to_string(lineNo) +
                        ": [lint] only supports 'exclude'";
                return false;
            }
            if (!parseStringArray(config.exclude))
                return false;
            continue;
        }
        RuleConfig &rule = config.rules[section];
        if (key == "severity") {
            if (value == "\"off\"")
                rule.severity = Severity::Off;
            else if (value == "\"warn\"")
                rule.severity = Severity::Warn;
            else if (value == "\"error\"")
                rule.severity = Severity::Error;
            else {
                error = "line " + std::to_string(lineNo) +
                        ": severity must be \"off\", \"warn\" or "
                        "\"error\"";
                return false;
            }
        } else if (key == "allow") {
            if (!parseStringArray(rule.allow))
                return false;
        } else {
            error = "line " + std::to_string(lineNo) + ": unknown key '" +
                    key + "'";
            return false;
        }
    }
    return true;
}

std::vector<Finding>
lint(const std::vector<Source> &sources, const Config &config)
{
    std::vector<FileUnit> units;
    units.reserve(sources.size());
    UnorderedIndex uidx;
    for (const Source &src : sources) {
        bool excluded = false;
        for (const std::string &prefix : config.exclude)
            if (pathHasPrefix(src.path, prefix))
                excluded = true;
        if (excluded)
            continue;
        FileUnit unit;
        unit.path = src.path;
        unit.stripped = stripFile(src.text);
        unit.tokens = tokenize(unit.stripped.code);
        collectUnorderedDecls(unit.tokens, uidx);
        units.push_back(std::move(unit));
    }
    for (const FileUnit &unit : units)
        collectAliasVars(unit.tokens, uidx);
    const SymbolIndex index = buildIndex(units);

    // Raw findings, grouped by the file they are attributed to. Local
    // rules only ever report into their own file; the cross-TU rules
    // report at the declaration they flag, so suppressions and allow
    // lists apply in the declaring file.
    std::map<std::string, std::vector<Finding>> byFile;
    for (const FileUnit &unit : units) {
        const Sink sink{&unit.path, &byFile[unit.path]};
        ruleWallClock(unit, sink);
        ruleRawRand(unit, sink);
        ruleUnorderedIter(unit, uidx, sink);
        rulePtrKeyedContainer(unit, sink);
        ruleEventHandleMisuse(unit, sink);
        ruleRawIo(unit, sink);
        ruleNakedNew(unit, sink);
        ruleTickFloat(unit, sink);
        ruleMissingNodiscard(unit, sink);
        ruleBlockCopy(unit, sink);
        ruleZipfApprox(unit, sink);
        ruleCrossShardState(unit, sink);
    }
    ruleMutableGlobal(index, byFile);
    ruleSharedSimState(index, byFile);
    ruleSpanImbalance(units, index, byFile);

    std::vector<Finding> findings;
    for (const FileUnit &unit : units) {
        std::vector<Finding> &raw = byFile[unit.path];

        // Validate suppressions and build the (line -> rules) map.
        std::map<int, std::set<std::string>> allowed;
        for (const auto &[line, sup] : unit.stripped.suppressions) {
            // A standalone suppression comment covers the next statement
            // that holds code — from the first code line through the line
            // that closes it — so multi-line justification comments and
            // multi-line statements both work.
            int target = line;
            int targetEnd = line;
            if (sup.standalone) {
                const auto &code = unit.stripped.code;
                const int n = static_cast<int>(code.size());
                int next = line; // `line` is 1-based; code[line] is next
                while (next < n && trim(code[next]).empty())
                    ++next;
                target = next + 1;
                targetEnd = target;
                while (targetEnd <= n) {
                    const std::string t = trim(code[targetEnd - 1]);
                    if (!t.empty() &&
                        (t.back() == ';' || t.back() == '{' ||
                         t.back() == '}'))
                        break;
                    ++targetEnd;
                }
                if (targetEnd > n)
                    targetEnd = n;
            }
            bool ok = sup.justified && !sup.rules.empty();
            for (const std::string &rule : sup.rules) {
                const auto &known = allRules();
                if (std::find(known.begin(), known.end(), rule) ==
                    known.end())
                    ok = false;
                else
                    for (int covered = target; covered <= targetEnd;
                         ++covered)
                        allowed[covered].insert(rule);
            }
            if (!ok)
                raw.push_back(
                    {unit.path, line, "bad-suppression",
                     Severity::Error,
                     sup.rules.empty()
                         ? "malformed suppression; use `// simlint: "
                           "allow(<rule>): <justification>`"
                         : (sup.justified
                                ? "suppression names an unknown rule"
                                : "suppression is missing its mandatory "
                                  "justification (`: <why this is "
                                  "safe>`)")});
        }

        for (Finding &f : raw) {
            const Severity sev = config.severityFor(f.rule);
            if (sev == Severity::Off)
                continue;
            if (config.allowsPath(f.rule, f.file))
                continue;
            const auto it = allowed.find(f.line);
            if (f.rule != "bad-suppression" && it != allowed.end() &&
                it->second.count(f.rule))
                continue;
            f.severity = sev;
            findings.push_back(std::move(f));
        }
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

namespace {

/** Trimmed text of @p line (1-based) in @p text, or "" out of range. */
std::string
lineText(const std::string &text, int line)
{
    std::istringstream in(text);
    std::string s;
    for (int i = 0; i < line && std::getline(in, s); ++i)
        ;
    return trim(s);
}

} // namespace

std::vector<Finding>
diffNewFindings(const std::vector<Finding> &current,
                const std::vector<Source> &currentSources,
                const std::vector<Finding> &base,
                const std::vector<Source> &baseSources)
{
    auto textOf = [](const std::vector<Source> &sources,
                     const std::string &path) -> const std::string * {
        for (const Source &src : sources)
            if (src.path == path)
                return &src.text;
        return nullptr;
    };
    // Multiset of base findings keyed by (file, rule, offending line
    // text) — line numbers shift under unrelated edits, text does not.
    std::map<std::string, int> seen;
    for (const Finding &f : base) {
        const std::string *text = textOf(baseSources, f.file);
        seen[f.file + "\x1f" + f.rule + "\x1f" +
             (text ? lineText(*text, f.line) : "")]++;
    }
    std::vector<Finding> fresh;
    for (const Finding &f : current) {
        const std::string *text = textOf(currentSources, f.file);
        const std::string key = f.file + "\x1f" + f.rule + "\x1f" +
                                (text ? lineText(*text, f.line) : "");
        const auto it = seen.find(key);
        if (it != seen.end() && it->second > 0)
            --it->second;
        else
            fresh.push_back(f);
    }
    return fresh;
}

std::string
renderText(const std::vector<Finding> &findings)
{
    std::string out;
    for (const Finding &f : findings) {
        out += f.file + ":" + std::to_string(f.line) + ": " +
               (f.severity == Severity::Warn ? "warning" : "error") + "[" +
               f.rule + "] " + f.message + "\n";
    }
    return out;
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += c; break;
        }
    }
    return out;
}

} // namespace

std::string
renderJson(const std::vector<Finding> &findings)
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out += "  {\"file\":\"" + jsonEscape(f.file) +
               "\",\"line\":" + std::to_string(f.line) + ",\"rule\":\"" +
               jsonEscape(f.rule) + "\",\"severity\":\"" +
               (f.severity == Severity::Warn ? "warning" : "error") +
               "\",\"message\":\"" + jsonEscape(f.message) + "\"}";
        out += i + 1 < findings.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
}

std::string
renderSarif(const std::vector<Finding> &findings)
{
    std::string out =
        "{\n"
        "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [{\n"
        "    \"tool\": {\"driver\": {\n"
        "      \"name\": \"simlint\",\n"
        "      \"informationUri\": \"README.md\",\n"
        "      \"rules\": [\n";
    const auto &rules = allRules();
    for (std::size_t i = 0; i < rules.size(); ++i) {
        out += "        {\"id\": \"" + jsonEscape(rules[i]) + "\"}";
        out += i + 1 < rules.size() ? ",\n" : "\n";
    }
    out += "      ]\n"
           "    }},\n"
           "    \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out += "      {\"ruleId\": \"" + jsonEscape(f.rule) +
               "\", \"level\": \"" +
               (f.severity == Severity::Warn ? "warning" : "error") +
               "\", \"message\": {\"text\": \"" + jsonEscape(f.message) +
               "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \"" + jsonEscape(f.file) +
               "\"}, \"region\": {\"startLine\": " +
               std::to_string(f.line) + "}}}]}";
        out += i + 1 < findings.size() ? ",\n" : "\n";
    }
    out += "    ]\n"
           "  }]\n"
           "}\n";
    return out;
}

} // namespace simlint
