/**
 * @file
 * simlint lexing layer: comment/string/preprocessor stripping that
 * preserves (line, column) positions, suppression-comment parsing,
 * `#include` target extraction, and a whitespace-insensitive tokenizer.
 *
 * Every rule in the v2 engine — local token rules and the cross-TU
 * analyses alike — consumes the output of this layer, so the position
 * guarantees here are what make finding line numbers exact.
 */

#ifndef SMARTDS_TOOLS_SIMLINT_LEXER_H_
#define SMARTDS_TOOLS_SIMLINT_LEXER_H_

#include <cctype>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace simlint {

inline bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

inline bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** @return @p s without leading/trailing whitespace. */
std::string trim(const std::string &s);

/** A parsed `simlint: allow(rule[, rule...])[: justification]` comment. */
struct Suppression
{
    std::vector<std::string> rules;
    bool justified = false;
    bool standalone = false; ///< comment-only line: applies to next line
};

/**
 * One file with comments, string literals and preprocessor lines blanked
 * out (every remaining character keeps its original line and column),
 * plus the suppression comments and quoted `#include` targets found
 * while stripping.
 */
struct StrippedFile
{
    std::vector<std::string> raw;  ///< original lines
    std::vector<std::string> code; ///< comments/strings/pp blanked
    std::map<int, Suppression> suppressions; ///< keyed by 1-based line
    /** Targets of `#include "..."` directives, in file order. Angle-
     *  bracket includes are system headers and deliberately ignored. */
    std::vector<std::string> includes;
};

/** Strip @p text (see StrippedFile). */
StrippedFile stripFile(const std::string &text);

/** One token of stripped code, tagged with its 1-based line. */
struct Token
{
    std::string text;
    int line = 0;

    bool is(const char *s) const { return text == s; }
    bool ident() const { return !text.empty() && isIdentStart(text[0]); }
    bool number() const
    {
        return !text.empty() &&
               std::isdigit(static_cast<unsigned char>(text[0]));
    }
    /** A floating-point literal: 1.5, .5f, 1e9, 0x1.8p3 — but not 1'000. */
    bool floatLiteral() const;
};

/** Tokenize stripped code lines (identifiers, numbers, punctuation). */
std::vector<Token> tokenize(const std::vector<std::string> &code);

/** Index of the matching close for the opener at @p open, or npos. */
std::size_t matchForward(const std::vector<Token> &t, std::size_t open,
                         const char *openSym, const char *closeSym);

} // namespace simlint

#endif // SMARTDS_TOOLS_SIMLINT_LEXER_H_
