#!/usr/bin/env python3
"""Compare two bench_perf.jsonl files and flag events/sec regressions.

Usage:
    perf_diff.py BASELINE.jsonl CURRENT.jsonl [--threshold 0.15]

Both files hold one JSON object per line, as written by the bench
harness (bench/bench_common.h). Records are keyed by (bench, jobs,
smoke, shards); the last record per key wins, so append-only histories
compare their most recent runs. Records written before the PDES shards
knob existed carry no "shards" field and default to 1, matching the
legacy serial kernel the new harness reports as shards=1. Records
without an "events_per_sec" field (for example micro_functional's
cache_speedup telemetry) are informational and skipped.

Exit status: 1 if any key common to both files regressed by more than
the threshold, 0 otherwise — including when the files share no keys
(a fresh bench has no baseline yet).
"""

import argparse
import json
import sys


def load(path):
    """Last record per (bench, jobs, smoke, shards) key; non-perf lines
    are skipped."""
    records = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if "events_per_sec" not in record:
                    continue
                key = (
                    record.get("bench", "?"),
                    record.get("jobs", 0),
                    record.get("smoke", False),
                    record.get("shards", 1),
                )
                records[key] = record
    except OSError as error:
        print(f"perf_diff: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    return records


def main():
    parser = argparse.ArgumentParser(
        description="Flag events/sec regressions between bench_perf files")
    parser.add_argument("baseline", help="baseline bench_perf.jsonl")
    parser.add_argument("current", help="current bench_perf.jsonl")
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="fractional slowdown that fails (default 0.15 = 15%%)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    common = sorted(set(baseline) & set(current))
    if not common:
        print("perf_diff: no common (bench, jobs, smoke) keys; nothing "
              "to compare")
        return 0

    regressions = 0
    print(f"{'bench':28} {'jobs':>4} {'smoke':>5} {'shards':>6} "
          f"{'base ev/s':>12} {'curr ev/s':>12} {'ratio':>7}")
    for key in common:
        base = baseline[key]["events_per_sec"]
        curr = current[key]["events_per_sec"]
        ratio = curr / base if base > 0 else float("inf")
        flag = ""
        if base > 0 and ratio < 1.0 - args.threshold:
            flag = "  << REGRESSION"
            regressions += 1
        bench, jobs, smoke, shards = key
        print(f"{bench:28} {jobs:>4} {str(smoke):>5} {shards:>6} "
              f"{base:>12.0f} {curr:>12.0f} {ratio:>6.2f}x{flag}")

    if regressions:
        print(f"perf_diff: {regressions} key(s) regressed more than "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    print(f"perf_diff: {len(common)} key(s) within {args.threshold:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
